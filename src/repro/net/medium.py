"""The shared radio medium.

The medium owns the physical truth of the simulation: where every device
is, and which pairs are within radio range.  On a fixed tick it advances
every mobility model, refreshes a spatial index, and diffs the in-range
pair set against the previous tick, emitting ``link_up`` / ``link_down``
callbacks with the best common radio.  Hysteresis (connect at R, drop at
R * ``hysteresis``) prevents link flapping at range boundaries — real
radios behave the same way because of fading margins.  The drop threshold
is always derived from the radio the link was *raised* on, so a pair
whose best common technology would change mid-contact keeps a stable
survival margin.

Scaling the medium
==================

Contact detection is the hottest loop of every experiment: it runs once
per ``tick_interval`` for the whole population, for the whole study.  The
default engine (``batched=True``) is built for density sweeps with
thousands of devices:

* **Batched mobility** — devices are grouped by mobility class and each
  class advances its whole group through one
  :meth:`~repro.mobility.base.MobilityModel.positions_at` call, then the
  spatial index absorbs every move via
  :meth:`~repro.geo.spatial_index.SpatialHashIndex.update_many`.
* **One pair sweep per tick** — instead of one radius query per device
  (which visits every pair twice and dedups with a ``seen`` set), the
  index enumerates each candidate pair exactly once with
  :meth:`~repro.geo.spatial_index.SpatialHashIndex.pairs_within`.
* **Incremental link diff** — active links are checked only against the
  survival threshold of the radio they were raised on; radio resolution
  (``best_common_radio``) runs once per pair ever, cached, because radio
  sets are immutable.
* **Per-pair next-check scheduling** — when both endpoints advertise a
  speed bound (:meth:`~repro.net.device.Device.max_speed_m_s`), a pair
  seen far outside its link range is provably out of reach for
  ``(distance - range) / (v_a + v_b)`` seconds and is skipped until
  then.  This prunes the per-candidate link logic, not the geometric
  sweep, so it matters for stationary populations (parked forever once
  out of range) and short-range radios inside a long-range sweep;
  fast-moving homogeneous-radio pairs rarely qualify.

How the candidate set is produced each tick is delegated to a strategy
object from :mod:`repro.net.medium_engines`: the per-device reference
oracle (``batched=False``), the batched single-process engine (the
default), or the sharded cross-process engine (``shards >= 1``), which
partitions the batched sweep over a persistent pool of worker processes
with ghost-zone (halo) position exchange at shard boundaries.  All
engines feed the same incremental link diff (:meth:`Medium._apply_candidates`)
and emit link events in sorted pair order within a tick, which makes
contact traces byte-identical across engines, shard counts *and*
processes (cell sets iterate in hash order, so unsorted emission would
depend on ``PYTHONHASHSEED``).  See
``benchmarks/test_bench_medium_scale.py`` and
``benchmarks/test_bench_shard_scale.py`` for throughput numbers and the
equivalence checks, and EXPERIMENTS.md for how to run them.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.geo.spatial_index import SpatialHashIndex
from repro.net.contact import ContactTracker, pair_key
from repro.net.device import Device
from repro.net.medium_engines import resolve_engine
from repro.net.radio import RadioProfile, best_common_radio
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTimer

LinkCallback = Callable[[Device, Device, RadioProfile], None]

#: Sentinel "never re-check" horizon for pairs that provably cannot link
#: (no common radio technology, or two stationary devices out of range).
_NEVER = math.inf

#: Safety margin (metres) subtracted from the provable out-of-reach gap
#: before scheduling a skip, absorbing floating-point drift in mobility
#: integration.  Chosen far above any accumulated rounding error.
_SCHEDULE_SLACK_M = 1.0

_MISSING = object()


class Medium:
    """Contact detection over mobile devices.

    Parameters
    ----------
    sim:
        The simulation engine (drives the tick).
    tick_interval:
        Seconds between position refreshes.  30 s resolves walking-speed
        encounters (a 10 m Bluetooth bubble at 1.4 m/s closing speed lasts
        ~14 s; P2P WiFi at 60 m lasts ~85 s) while keeping 7-day runs fast;
        tighten it in micro-benchmarks when Bluetooth-only fidelity matters.
    hysteresis:
        Link-drop range multiplier (drop at range * hysteresis).
    batched:
        Use the batched contact-detection engine (default).  ``False``
        selects the per-device reference path — same contacts, per-device
        spatial queries; kept as the benchmark/equivalence oracle.
    shards:
        ``>= 1`` selects the sharded cross-process engine with that many
        worker processes (``batched`` is then ignored — sharding
        generalises the batched algorithm).  ``0`` (default) keeps the
        single-process engines.  ``shards=1`` is the full sharded
        machinery with one worker: useful for isolating the partition
        overhead and for equivalence tests.
    halo_m:
        Minimum ghost-zone width in metres for the sharded engine.  The
        engine always uses at least the sweep radius; this knob can only
        widen the halo.  Ignored unless ``shards >= 1``.
    """

    def __init__(
        self,
        sim: Simulator,
        tick_interval: float = 30.0,
        hysteresis: float = 1.1,
        batched: bool = True,
        shards: int = 0,
        halo_m: Optional[float] = None,
    ) -> None:
        if tick_interval <= 0:
            raise ValueError(f"tick_interval must be positive, got {tick_interval}")
        if hysteresis < 1.0:
            raise ValueError(f"hysteresis must be >= 1.0, got {hysteresis}")
        if shards < 0:
            raise ValueError(f"shards must be >= 0, got {shards}")
        self.sim = sim
        self.tick_interval = float(tick_interval)
        self.hysteresis = float(hysteresis)
        self.batched = bool(batched)
        self.shards = int(shards)
        self.halo_m = halo_m
        self.devices: Dict[str, Device] = {}
        self.contacts = ContactTracker()
        self._index = SpatialHashIndex(cell_size=120.0)
        self._linked: Dict[Tuple[str, str], RadioProfile] = {}
        self._up_callbacks: List[LinkCallback] = []
        self._down_callbacks: List[LinkCallback] = []
        self._max_range = 0.0
        #: device_id -> mobility speed bound (None = unknown).
        self._speed_bound: Dict[str, Optional[float]] = {}
        #: device_id -> own maximum radio reach * hysteresis (sweep cutoff).
        self._reach: Dict[str, float] = {}
        # Radio resolution is cached per *radio-set class*, not per pair:
        # radio sets are immutable tuples, so a population carrying k
        # distinct sets needs at most k^2 best_common_radio calls, ever.
        self._radio_set_ids: Dict[Tuple[RadioProfile, ...], int] = {}
        self._radio_class: Dict[str, int] = {}
        #: (class_a << 16 | class_b) -> (radio, range_m^2) or None.
        self._class_radio: Dict[int, Optional[Tuple[RadioProfile, float]]] = {}
        #: pair -> earliest time the pair could possibly come into range.
        self._next_check: Dict[Tuple[str, str], float] = {}
        # Tick instrumentation (read by the scale bench and sweep reports).
        self.tick_count = 0
        self.pairs_examined = 0
        self.pair_checks_skipped = 0
        #: cumulative parent-process CPU seconds spent inside tick() —
        #: the serialised section that governs multi-core scaling.
        self.tick_cpu_s = 0.0
        self.engine = resolve_engine(self, self.batched, self.shards, halo_m)
        self._timer = PeriodicTimer(sim, self.tick_interval, self.tick, name="medium-tick")

    # -- population ---------------------------------------------------------------
    def add_device(self, device: Device) -> None:
        """Register a device.

        The batched engine snapshots the device's mobility object, radio
        set and speed bound here; none of them may be swapped while the
        device is registered (``remove_device`` + ``add_device`` to
        change them).  Power state may change freely at any time.
        """
        if device.device_id in self.devices:
            raise ValueError(f"duplicate device id {device.device_id!r}")
        self.devices[device.device_id] = device
        own_range = max(r.range_m for r in device.radios)
        self._max_range = max(self._max_range, own_range)
        self._speed_bound[device.device_id] = device.max_speed_m_s()
        self._reach[device.device_id] = own_range * self.hysteresis
        set_id = self._radio_set_ids.get(device.radios)
        if set_id is None:
            set_id = len(self._radio_set_ids)
            self._radio_set_ids[device.radios] = set_id
        self._radio_class[device.device_id] = set_id
        self._index.update(device.device_id, device.position_at(self.sim.now))
        self.engine.device_added(device)

    def remove_device(self, device_id: str) -> None:
        device = self.devices.get(device_id)
        if device is None:
            return
        # Drop links while the device is still registered so link-down
        # callbacks fire with both Device objects — upper layers (sessions,
        # routing) tear down peer state through exactly those callbacks.
        for key in sorted(k for k in self._linked if device_id in k):
            self._drop_link(key)
        del self.devices[device_id]
        self._index.remove(device_id)
        self._speed_bound.pop(device_id, None)
        self._reach.pop(device_id, None)
        self._radio_class.pop(device_id, None)
        for key in [k for k in self._next_check if device_id in k]:
            del self._next_check[key]
        self.engine.device_removed(device_id)

    # -- callbacks -----------------------------------------------------------------
    def on_link_up(self, callback: LinkCallback) -> None:
        self._up_callbacks.append(callback)

    def on_link_down(self, callback: LinkCallback) -> None:
        self._down_callbacks.append(callback)

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic ticking; performs an immediate first tick so
        links existing at t=0 are detected."""
        self.tick()
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()
        for key in sorted(self._linked):
            self._drop_link(key)
        self.contacts.close_all(self.sim.now)
        self.engine.stop()

    # -- the tick ---------------------------------------------------------------------
    def tick(self) -> None:
        """Advance positions and rediff the in-range pair set."""
        self.tick_count += 1
        started = time.process_time()  # repro: ignore[nondet-wallclock] -- bench instrumentation only: the reading accumulates into tick_cpu_s, which is reported by benchmarks and never reaches simulation state, scheduling or the trace.
        self.engine.tick(self.sim.now)
        self.tick_cpu_s += time.process_time() - started  # repro: ignore[nondet-wallclock] -- bench instrumentation only: see above.

    def _apply_candidates(
        self, now: float, candidates: List[Tuple[str, str, float]]
    ) -> None:
        """The shared incremental link diff.

        ``candidates`` is the tick's geometric candidate set —
        ``(a, b, d²)`` for every pair within ``min(reach_a, reach_b)``,
        each pair exactly once, in any order (the diff is per-pair
        independent and emission below is sorted, so candidate order
        cannot reach the trace).  Engines must compute ``d²`` with the
        ``pairs_within`` float64 arithmetic so range thresholds resolve
        identically everywhere.
        """
        devices = self.devices
        linked = self._linked
        radio_class = self._radio_class
        class_radio = self._class_radio
        speed_bound = self._speed_bound
        next_check = self._next_check
        hysteresis = self.hysteresis
        tick_interval = self.tick_interval
        survivors: Set[Tuple[str, str]] = set()
        to_raise: List[Tuple[Tuple[str, str], RadioProfile]] = []
        skipped = 0
        for a, b, d2 in candidates:
            key = (a, b) if a <= b else (b, a)
            active = linked.get(key)
            if active is not None:
                if not (devices[a].powered_on and devices[b].powered_on):
                    continue  # dropped below
                limit = active.range_m * hysteresis
                if d2 <= limit * limit:
                    survivors.add(key)
                continue
            if not (devices[a].powered_on and devices[b].powered_on):
                continue
            horizon = next_check.get(key)
            if horizon is not None:
                if now < horizon:
                    skipped += 1
                    continue
                del next_check[key]
            class_key = (radio_class[key[0]] << 16) | radio_class[key[1]]
            entry = class_radio.get(class_key, _MISSING)
            if entry is _MISSING:
                radio = best_common_radio(devices[key[0]].radios, devices[key[1]].radios)
                entry = None if radio is None else (radio, radio.range_m * radio.range_m)
                class_radio[class_key] = entry
            if entry is None:
                continue  # no common technology (radio sets are immutable)
            radio, r2 = entry
            if d2 <= r2:
                to_raise.append((key, radio))
                continue
            # Out of range: when both speed bounds are known, skip the pair
            # until it could possibly have closed the gap.
            va = speed_bound.get(a)
            vb = speed_bound.get(b)
            if va is None or vb is None:
                continue
            closure = va + vb
            reach = radio.range_m
            if closure <= 0.0:
                next_check[key] = _NEVER  # both pinned, forever apart
                continue
            min_skip = reach + _SCHEDULE_SLACK_M + closure * tick_interval
            if d2 > min_skip * min_skip:
                next_check[key] = (
                    now + (math.sqrt(d2) - reach - _SCHEDULE_SLACK_M) / closure
                )
        self.pair_checks_skipped += skipped
        if len(survivors) != len(linked):
            for key in sorted(k for k in linked if k not in survivors):
                self._drop_link(key)
        to_raise.sort(key=lambda item: item[0])
        for key, radio in to_raise:
            self._raise_link(key, radio)

    def _raise_link(self, key: Tuple[str, str], radio: RadioProfile) -> None:
        self._linked[key] = radio
        a, b = self.devices[key[0]], self.devices[key[1]]
        self.contacts.contact_up(key[0], key[1], radio, self.sim.now)
        self.sim.trace.emit(
            self.sim.now, "contact", "up", a=key[0], b=key[1], radio=radio.technology.value
        )
        for callback in self._up_callbacks:
            callback(a, b, radio)

    def _drop_link(self, key: Tuple[str, str]) -> None:
        radio = self._linked.pop(key, None)
        if radio is None:
            return
        a, b = self.devices.get(key[0]), self.devices.get(key[1])
        self.contacts.contact_down(key[0], key[1], self.sim.now)
        self.sim.trace.emit(
            self.sim.now, "contact", "down", a=key[0], b=key[1], radio=radio.technology.value
        )
        if a is not None and b is not None:
            for callback in self._down_callbacks:
                callback(a, b, radio)

    # -- forced drops (fault injection) ---------------------------------------------
    def force_drop(self, a: str, b: str) -> bool:
        """Drop the active link between two devices, if any (a link flap:
        the pair re-links on the next tick while still in range).  Fires
        the normal link-down callbacks; returns True when a link dropped."""
        key = pair_key(a, b)
        if key not in self._linked:
            return False
        self._drop_link(key)
        return True

    def drop_links_of(self, device_id: str) -> int:
        """Drop every active link touching ``device_id`` (device crash or
        abrupt power loss), in sorted pair order for determinism.  Returns
        the number of links dropped."""
        keys = sorted(k for k in self._linked if device_id in k)
        for key in keys:
            self._drop_link(key)
        return len(keys)

    def active_link_keys(self) -> List[Tuple[str, str]]:
        """Sorted snapshot of the active link pair keys."""
        return sorted(self._linked)

    # -- queries --------------------------------------------------------------------
    def link_between(self, a: str, b: str) -> Optional[RadioProfile]:
        """The active radio between two devices, or None."""
        return self._linked.get(pair_key(a, b))

    def neighbours_of(self, device_id: str) -> List[str]:
        """Device ids currently linked with ``device_id``."""
        out = []
        for key in self._linked:
            if key[0] == device_id:
                out.append(key[1])
            elif key[1] == device_id:
                out.append(key[0])
        return out

    @property
    def active_links(self) -> int:
        return len(self._linked)

    @property
    def distance_checks(self) -> int:
        """Cumulative candidate distance computations — the geometric
        work the batched sweep compresses (the per-device path visits
        every pair from both ends; the sharded engine re-checks halo
        pairs in whichever band sees them without owning them)."""
        return self._index.distance_checks + self.engine.extra_distance_checks
