"""A physical device: identity + mobility + radios + power state.

A :class:`Device` is purely physical — it knows nothing about MPC sessions
or routing.  The layers above (``repro.mpc``, ``repro.core``) attach to it
through the medium's contact callbacks.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.geo.point import Point
from repro.mobility.base import MobilityModel
from repro.net.radio import DEFAULT_RADIO_SET, RadioProfile


class Device:
    """A mobile (or stationary) radio-equipped node."""

    def __init__(
        self,
        device_id: str,
        mobility: MobilityModel,
        radios: Sequence[RadioProfile] = DEFAULT_RADIO_SET,
        powered_on: bool = True,
    ) -> None:
        if not device_id:
            raise ValueError("device_id must be non-empty")
        if not radios:
            raise ValueError("device needs at least one radio")
        self.device_id = device_id
        self.mobility = mobility
        self.radios: Tuple[RadioProfile, ...] = tuple(radios)
        self.powered_on = powered_on
        #: Most recent known position: a Point, a raw ``(x, y)`` tuple
        #: (the sharded engine scatters 10k+ worker-reported positions
        #: per tick and defers Point construction to first read — most
        #: are never read), or None before the first tick.
        self._last_position: Optional[object] = None

    def position_at(self, now: float) -> Point:
        """Current position (delegates to the mobility model)."""
        position = self.mobility.position_at(now)
        self._last_position = position
        return position

    @property
    def last_position(self) -> Optional[Point]:
        """Most recently computed position (None before the first tick)."""
        position = self._last_position
        if type(position) is tuple:
            position = Point(position[0], position[1])
            self._last_position = position
        return position

    def max_speed_m_s(self) -> Optional[float]:
        """Speed bound from the mobility model (None when unknown)."""
        return self.mobility.max_speed_m_s()

    def power_off(self) -> None:
        """Simulate the app backgrounded / device off: radios go silent."""
        self.powered_on = False

    def power_on(self) -> None:
        self.powered_on = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Device {self.device_id} on={self.powered_on}>"

    def __hash__(self) -> int:
        return hash(self.device_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Device) and other.device_id == self.device_id
