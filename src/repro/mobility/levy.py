"""Levy-walk mobility.

Human displacement statistics are heavy-tailed: many short hops, rare long
excursions (Rhee et al., "On the Levy-walk nature of human mobility").  The
model draws step lengths from a truncated Pareto distribution and pause
times from a bounded uniform, giving super-diffusive movement that stresses
DTN routing differently from random waypoint.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Tuple

from repro.geo.point import Point
from repro.geo.region import Region
from repro.mobility.base import MobilityModel


class LevyWalk(MobilityModel):
    """Truncated-Pareto step-length walk within a bounded region.

    Parameters
    ----------
    alpha:
        Pareto tail exponent; smaller -> heavier tail -> longer flights.
    min_step / max_step:
        Truncation bounds on flight length, in metres.
    """

    def __init__(
        self,
        region: Region,
        rng: random.Random,
        alpha: float = 1.6,
        min_step: float = 10.0,
        max_step: float = 5_000.0,
        speed_range: Tuple[float, float] = (0.8, 3.0),
        pause_range: Tuple[float, float] = (0.0, 600.0),
        start: Optional[Point] = None,
    ) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if not 0 < min_step <= max_step:
            raise ValueError(f"invalid step bounds [{min_step}, {max_step}]")
        self.region = region
        self._rng = rng
        self.alpha = alpha
        self.min_step = min_step
        self.max_step = max_step
        self.speed_range = speed_range
        self.pause_range = pause_range
        self._position = start if start is not None else region.random_point(rng)
        self._time = 0.0
        self._pause_end: Optional[float] = 0.0
        self._target: Optional[Point] = None
        self._speed = 1.0

    def max_speed_m_s(self) -> float:
        return self.speed_range[1]

    def _draw_step_length(self) -> float:
        """Inverse-CDF sample from a Pareto truncated to [min, max]."""
        u = self._rng.random()
        a = self.alpha
        lo, hi = self.min_step, self.max_step
        # CDF of truncated Pareto: (lo^-a - x^-a) / (lo^-a - hi^-a)
        lo_a = lo ** (-a)
        hi_a = hi ** (-a)
        return (lo_a - u * (lo_a - hi_a)) ** (-1.0 / a)

    def _begin_move(self) -> None:
        length = self._draw_step_length()
        angle = self._rng.uniform(0.0, 2.0 * math.pi)
        raw = self._position.offset(length * math.cos(angle), length * math.sin(angle))
        self._target = self.region.clamp(raw)
        self._speed = self._rng.uniform(*self.speed_range)
        self._pause_end = None

    def _begin_pause(self) -> None:
        self._pause_end = self._time + self._rng.uniform(*self.pause_range)
        self._target = None

    def position_at(self, now: float) -> Point:
        if now < self._time:
            raise ValueError(f"time moved backwards: {now} < {self._time}")
        while self._time < now:
            if self._pause_end is not None:
                if self._pause_end >= now:
                    self._time = now
                    break
                self._time = self._pause_end
                self._begin_move()
            else:
                d = self._position.distance_to(self._target)
                if d == 0.0:
                    self._begin_pause()
                    continue
                arrival = self._time + d / self._speed
                if arrival > now:
                    self._position = self._position.moved_towards(
                        self._target, (now - self._time) * self._speed
                    )
                    self._time = now
                    break
                self._position = self._target
                self._time = arrival
                self._begin_pause()
        return self._position
