"""Synthetic human mobility.

The paper's evaluation rode on ten real humans moving around Gainesville
for a week.  We replace them with calibrated synthetic mobility (the
substitution the reproduction banding prescribes), keeping the behavioural
features §VI calls out explicitly:

* a large sparse area (~11 km x 8 km, 88 km^2) — not the dense 0.25–4 km^2
  boxes of typical DTN simulations,
* nodes stationary at home "at least 5-8 hours a day due to the human
  requirement to sleep",
* students who share a campus and "typically interacted during the school
  week" — producing recurring weekday meetings plus chance encounters.

Models:

* :class:`~repro.mobility.random_waypoint.RandomWaypoint` — the classic
  baseline (used by the ablation benches),
* :class:`~repro.mobility.levy.LevyWalk` — heavy-tailed step lengths,
* :class:`~repro.mobility.working_day.WorkingDayMovement` — home / campus /
  social-venue schedule with sleep, the model that reproduces Fig. 4,
* :class:`~repro.mobility.trace_model.TraceReplayModel` — replays recorded
  (time, x, y) waypoint traces, and the export side to write them.
"""

from repro.mobility.base import MobilityModel, StationaryModel
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.levy import LevyWalk
from repro.mobility.working_day import DailySchedule, WorkingDayMovement
from repro.mobility.trace_model import TraceReplayModel, WaypointTrace
from repro.mobility.city import SyntheticCity

__all__ = [
    "MobilityModel",
    "StationaryModel",
    "RandomWaypoint",
    "LevyWalk",
    "DailySchedule",
    "WorkingDayMovement",
    "TraceReplayModel",
    "WaypointTrace",
    "SyntheticCity",
]
