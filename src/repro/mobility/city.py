"""Synthetic city layout generator.

Builds a Gainesville-like place layout inside an arbitrary region: one
shared campus (the University of Florida anchors the real study), homes
scattered across residential bands, and a handful of social venues
(cafes, gyms, restaurants) clustered loosely around the campus and
downtown — enough structure for the working-day model to produce the
recurring-meeting contact pattern the paper observed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.geo.places import Place, PlaceKind
from repro.geo.point import Point
from repro.geo.region import Region


@dataclass
class SyntheticCity:
    """A generated city: one campus, N homes, M social venues."""

    region: Region
    campus: Place
    homes: List[Place] = field(default_factory=list)
    social_venues: List[Place] = field(default_factory=list)

    @classmethod
    def gainesville_like(
        cls,
        region: Region,
        rng: random.Random,
        num_homes: int = 10,
        num_venues: int = 6,
        campus_radius: float = 400.0,
    ) -> "SyntheticCity":
        """Generate the study layout.

        The campus sits near the region's centroid; homes are spread over
        the full region (students live all over town, which is what makes
        the area 88 km^2 rather than a campus-sized box); venues cluster
        within a few km of campus/downtown.
        """
        if num_homes < 1:
            raise ValueError("need at least one home")
        center = region.center
        campus = Place(
            name="campus",
            kind=PlaceKind.WORK,
            location=Point(
                center.x + rng.uniform(-0.05, 0.05) * region.width,
                center.y + rng.uniform(-0.05, 0.05) * region.height,
            ),
            radius=campus_radius,
        )
        homes = []
        for i in range(num_homes):
            # Homes avoid the immediate campus core but cover the region.
            while True:
                p = region.random_point(rng)
                if p.distance_to(campus.location) > campus_radius * 1.5:
                    break
            homes.append(Place(name=f"home-{i}", kind=PlaceKind.HOME, location=p, radius=20.0))
        venues = []
        for j in range(num_venues):
            # Venues concentrate around campus (within ~30% of region size).
            p = Point(
                campus.location.x + rng.gauss(0.0, 0.15) * region.width,
                campus.location.y + rng.gauss(0.0, 0.15) * region.height,
            )
            venues.append(
                Place(
                    name=f"venue-{j}",
                    kind=PlaceKind.SOCIAL,
                    location=region.clamp(p),
                    radius=rng.uniform(30.0, 80.0),
                )
            )
        return cls(region=region, campus=campus, homes=homes, social_venues=venues)

    def all_places(self) -> List[Place]:
        return [self.campus] + self.homes + self.social_venues
