"""Waypoint trace recording and replay.

Traces make experiments portable: a mobility run can be exported to a
plain-text format (one ``time x y`` line per sample, compatible in spirit
with ONE-simulator movement traces), shared, and replayed bit-exactly —
the closest a simulation gets to the paper's "replicable, comparable, and
available to a variety of researchers" goal (§I).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, TextIO, Tuple

from repro.geo.point import Point
from repro.mobility.base import MobilityModel


@dataclass
class WaypointTrace:
    """A time-ordered sequence of ``(time, Point)`` samples for one node."""

    node_id: str
    samples: List[Tuple[float, Point]] = field(default_factory=list)

    def add(self, time: float, position: Point) -> None:
        if self.samples and time < self.samples[-1][0]:
            raise ValueError(
                f"non-monotonic sample at {time} (last {self.samples[-1][0]})"
            )
        self.samples.append((time, position))

    @property
    def duration(self) -> float:
        if not self.samples:
            return 0.0
        return self.samples[-1][0] - self.samples[0][0]

    def write(self, fh: TextIO) -> None:
        """Write as ``node_id time x y`` lines."""
        for time, p in self.samples:
            fh.write(f"{self.node_id} {time:.3f} {p.x:.3f} {p.y:.3f}\n")

    @classmethod
    def read_all(cls, fh: TextIO) -> dict:
        """Parse a multi-node trace file into ``{node_id: WaypointTrace}``."""
        traces: dict = {}
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"malformed trace line {lineno}: {line!r}")
            node_id, t, x, y = parts[0], float(parts[1]), float(parts[2]), float(parts[3])
            traces.setdefault(node_id, cls(node_id=node_id)).add(t, Point(x, y))
        return traces


class TraceReplayModel(MobilityModel):
    """Replays a :class:`WaypointTrace` with linear interpolation.

    Before the first sample the node sits at the first position; after the
    last sample it sits at the last.
    """

    def __init__(self, trace: WaypointTrace) -> None:
        if not trace.samples:
            raise ValueError(f"trace for {trace.node_id!r} is empty")
        self.trace = trace
        self._times = [t for t, _ in trace.samples]

    def max_speed_m_s(self):
        """Fastest inter-sample segment speed (interpolation never exceeds
        it), or None if the trace teleports (two positions at one time)."""
        fastest = 0.0
        samples = self.trace.samples
        for (t0, p0), (t1, p1) in zip(samples, samples[1:]):
            if t1 > t0:
                fastest = max(fastest, p0.distance_to(p1) / (t1 - t0))
            elif p1 != p0:
                return None
        return fastest

    def position_at(self, now: float) -> Point:
        samples = self.trace.samples
        idx = bisect_right(self._times, now)
        if idx == 0:
            return samples[0][1]
        if idx == len(samples):
            return samples[-1][1]
        t0, p0 = samples[idx - 1]
        t1, p1 = samples[idx]
        if t1 == t0:
            return p1
        frac = (now - t0) / (t1 - t0)
        return Point(p0.x + (p1.x - p0.x) * frac, p0.y + (p1.y - p0.y) * frac)


def record_trace(
    model: MobilityModel,
    node_id: str,
    duration: float,
    interval: float = 60.0,
    start: float = 0.0,
) -> WaypointTrace:
    """Sample ``model`` every ``interval`` seconds into a trace."""
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    trace = WaypointTrace(node_id=node_id)
    t = start
    while t <= start + duration:
        trace.add(t, model.position_at(t))
        t += interval
    return trace
