"""Working-day mobility: the model behind the Gainesville reproduction.

The ten field-study participants were students: they slept at home
(stationary "at least 5-8 hours a day", §VI-B), spent weekdays on a shared
campus, and sometimes met at social venues.  This model generates exactly
that structure, one agenda per simulated day:

* wake at home (~06:45 with per-day jitter),
* weekdays: commute to the work/campus place, optional lunch outing,
  leave work late afternoon,
* optional evening social-venue visit (probability differs weekday vs
  weekend),
* return home and sleep until the next wake.

While "at" a venue the node wanders slowly inside the venue footprint, so
co-located users drift in and out of Bluetooth range instead of being
pinned at one coordinate — that intermittency is what makes short-range
D2D contacts bursty in the real deployment.

Movement between places is a straight line at walking speed, or driving
speed beyond a threshold distance (students cross an 88 km^2 city by car
or bus, not on foot).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.geo.places import Place
from repro.geo.point import Point
from repro.mobility.base import MobilityModel

_DAY = 86_400.0
_HOUR = 3_600.0


@dataclass
class DailySchedule:
    """Per-user schedule parameters (times in hours-of-day).

    Defaults are calibrated so that the emergent contact pattern matches
    the paper's published delay/delivery shape: most deliveries within one
    hop at recurring campus meetings, a long tail of 2-4 day delays from
    users who skip campus some days.
    """

    home: Place
    work: Place
    social_places: List[Place] = field(default_factory=list)
    wake_hour: float = 6.75
    wake_jitter: float = 0.75
    commute_prep_hours: Tuple[float, float] = (0.5, 1.5)
    work_leave_hour: float = 17.0
    work_leave_jitter: float = 1.5
    #: When set, campus visits start uniformly in this hour-of-day window
    #: (staggered class times) instead of right after wake + prep.
    depart_window_hours: Optional[Tuple[float, float]] = None
    #: When set, the campus stay lasts uniform(lo, hi) hours instead of
    #: ending at ``work_leave_hour`` (students attend a class or two, not
    #: a nine-to-five shift).
    work_stay_hours: Optional[Tuple[float, float]] = None
    lunch_probability: float = 0.45
    weekday_attendance: float = 0.85  # probability a weekday includes campus
    weekday_social_prob: float = 0.40
    weekend_outing_prob: float = 0.55
    social_visit_hours: Tuple[float, float] = (1.0, 3.0)
    bedtime_hour: float = 23.0
    bedtime_jitter: float = 1.0
    walk_speed: Tuple[float, float] = (1.1, 1.6)
    drive_speed: Tuple[float, float] = (7.0, 13.0)
    drive_threshold: float = 1_500.0

    def speed_for(self, dist: float, rng: random.Random) -> float:
        """Travel speed for a leg of ``dist`` metres."""
        if dist > self.drive_threshold:
            return rng.uniform(*self.drive_speed)
        return rng.uniform(*self.walk_speed)


@dataclass
class _Segment:
    """One contiguous piece of a node's day."""

    start: float
    end: float
    kind: str  # "stay" | "move"
    place: Optional[Place] = None
    from_point: Optional[Point] = None
    to_point: Optional[Point] = None


class _VenueWander:
    """Slow random waypoint inside one venue disc."""

    def __init__(self, place: Place, rng: random.Random, start: Point, start_time: float) -> None:
        self._place = place
        self._rng = rng
        self._position = start
        self._time = start_time
        self._target = start
        self._speed = 1.0
        self._pause_end: Optional[float] = start_time

    def position_at(self, now: float) -> Point:
        while self._time < now:
            if self._pause_end is not None:
                if self._pause_end >= now:
                    self._time = now
                    break
                self._time = self._pause_end
                self._target = self._place.jittered_position(self._rng)
                self._speed = self._rng.uniform(0.4, 1.2)
                self._pause_end = None
            else:
                d = self._position.distance_to(self._target)
                arrival = self._time + (d / self._speed if d else 0.0)
                if d and arrival > now:
                    self._position = self._position.moved_towards(
                        self._target, (now - self._time) * self._speed
                    )
                    self._time = now
                    break
                self._position = self._target
                self._time = arrival if d else self._time
                # Dwell at the spot for 2-15 minutes before drifting again.
                self._pause_end = self._time + self._rng.uniform(120.0, 900.0)
        return self._position


class WorkingDayMovement(MobilityModel):
    """Agenda-driven daily mobility between home, campus and venues."""

    def __init__(self, schedule: DailySchedule, rng: random.Random) -> None:
        self.schedule = schedule
        self._rng = rng
        self._segments: List[_Segment] = []
        self._generated_days = 0
        self._seg_idx = 0
        self._position = schedule.home.jittered_position(rng)
        self._wander: Optional[_VenueWander] = None
        self._wander_seg: int = -1
        #: day -> [(start, place, duration_s)] externally arranged meetings.
        self._appointments: dict = {}

    def add_appointment(self, start: float, place: Place, duration: float) -> None:
        """Arrange a coordinated visit (a meetup with friends).

        Appointments must be added before the day's agenda is generated —
        i.e. before any position query at or past that day.  The node
        travels to ``place`` at ``start``, stays ``duration`` seconds,
        then returns home (unless its regular agenda takes over first).
        """
        day = int(start // _DAY)
        if day < self._generated_days:
            raise ValueError(
                f"day {day} agenda already generated; appointments must be "
                "arranged in advance"
            )
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self._appointments.setdefault(day, []).append((start, place, duration))

    # -- agenda generation ----------------------------------------------------
    def _is_weekday(self, day: int) -> bool:
        """Days 0-4 of each week are weekdays (study started on a Monday)."""
        return day % 7 < 5

    def _generate_day(self, day: int) -> None:
        """Append the (departure_time, place) agenda for ``day`` as segments."""
        s = self.schedule
        rng = self._rng
        t0 = day * _DAY
        wake = t0 + (s.wake_hour + rng.uniform(-s.wake_jitter, s.wake_jitter)) * _HOUR
        departures: List[Tuple[float, Place]] = []

        if self._is_weekday(day) and rng.random() < s.weekday_attendance:
            if s.depart_window_hours is not None:
                leave_home = max(wake, t0 + rng.uniform(*s.depart_window_hours) * _HOUR)
            else:
                leave_home = wake + rng.uniform(*s.commute_prep_hours) * _HOUR
            departures.append((leave_home, s.work))
            if s.work_stay_hours is not None:
                leave_work = leave_home + rng.uniform(*s.work_stay_hours) * _HOUR
            else:
                leave_work = t0 + (
                    s.work_leave_hour + rng.uniform(-s.work_leave_jitter, s.work_leave_jitter)
                ) * _HOUR
            if s.social_places and rng.random() < s.lunch_probability:
                lunch_out = t0 + rng.uniform(11.5, 13.0) * _HOUR
                lunch_back = lunch_out + rng.uniform(0.5, 1.2) * _HOUR
                if lunch_out > leave_home and lunch_back < leave_work:
                    departures.append((lunch_out, rng.choice(s.social_places)))
                    departures.append((lunch_back, s.work))
            if s.social_places and rng.random() < s.weekday_social_prob:
                venue = rng.choice(s.social_places)
                departures.append((leave_work, venue))
                visit = rng.uniform(*s.social_visit_hours) * _HOUR
                departures.append((leave_work + visit, s.home))
            else:
                departures.append((leave_work, s.home))
        else:
            # Weekend / skipped day: maybe one outing, otherwise home all day.
            if s.social_places and rng.random() < s.weekend_outing_prob:
                out = t0 + rng.uniform(10.0, 16.0) * _HOUR
                back = out + rng.uniform(*s.social_visit_hours) * _HOUR
                departures.append((out, rng.choice(s.social_places)))
                departures.append((back, s.home))

        appointments = self._appointments.pop(day, ())
        if appointments:
            # Arranged meetings take precedence: drop regular departures
            # that would pull the node away mid-appointment (including the
            # travel lead-in).
            def _conflicts(when: float) -> bool:
                return any(
                    start - 1800.0 <= when <= start + duration
                    for start, _, duration in appointments
                )

            departures = [d for d in departures if not _conflicts(d[0])]
            for start, place, duration in appointments:
                departures.append((start, place))
                departures.append((start + duration, s.home))

        departures.sort(key=lambda item: item[0])
        self._append_segments(t0 + _DAY, departures)
        self._generated_days = day + 1

    def _append_segments(self, day_end: float, departures: List[Tuple[float, Place]]) -> None:
        """Convert a departure agenda into contiguous stay/move segments."""
        s = self.schedule
        # Where the previous segment left the node (home, at day start).
        if self._segments:
            cursor_time = self._segments[-1].end
            current_place = self._segments[-1].place or s.home
            current_point = self._segments[-1].to_point or self._segments[-1].place.location
        else:
            cursor_time = 0.0
            current_place = s.home
            current_point = self._position

        for depart, target in departures:
            depart = max(depart, cursor_time)
            if depart > cursor_time:
                self._segments.append(
                    _Segment(start=cursor_time, end=depart, kind="stay", place=current_place)
                )
            target_point = target.jittered_position(self._rng)
            dist = current_point.distance_to(target_point)
            speed = s.speed_for(dist, self._rng)
            arrival = depart + (dist / speed if speed > 0 else 0.0)
            self._segments.append(
                _Segment(
                    start=depart,
                    end=arrival,
                    kind="move",
                    place=target,
                    from_point=current_point,
                    to_point=target_point,
                )
            )
            cursor_time = arrival
            current_place = target
            current_point = target_point

        # Sleep/idle at the final place until the end of the day.
        if cursor_time < day_end:
            self._segments.append(
                _Segment(start=cursor_time, end=day_end, kind="stay", place=current_place)
            )

    def _ensure_time_covered(self, now: float) -> None:
        while not self._segments or self._segments[-1].end <= now:
            self._generate_day(self._generated_days)

    # -- querying ----------------------------------------------------------------
    def position_at(self, now: float) -> Point:
        self._ensure_time_covered(now)
        while self._seg_idx < len(self._segments) - 1 and self._segments[self._seg_idx].end <= now:
            self._seg_idx += 1
        seg = self._segments[self._seg_idx]
        if seg.kind == "move":
            span = seg.end - seg.start
            frac = 0.0 if span <= 0 else min(1.0, max(0.0, (now - seg.start) / span))
            self._position = Point(
                seg.from_point.x + (seg.to_point.x - seg.from_point.x) * frac,
                seg.from_point.y + (seg.to_point.y - seg.from_point.y) * frac,
            )
            self._wander = None
            self._wander_seg = -1
        else:
            if self._wander_seg != self._seg_idx:
                anchor = self._position
                # Keep the wander inside the venue: snap the anchor to it.
                if anchor.distance_to(seg.place.location) > seg.place.radius:
                    anchor = seg.place.jittered_position(self._rng)
                self._wander = _VenueWander(seg.place, self._rng, anchor, max(seg.start, 0.0))
                self._wander_seg = self._seg_idx
            self._position = self._wander.position_at(now)
        return self._position

    # -- introspection (used by tests and the Fig. 4b bench) ---------------------
    def current_place(self, now: float) -> Optional[Place]:
        """The venue occupied at ``now`` (None while travelling)."""
        self._ensure_time_covered(now)
        idx = self._seg_idx
        while idx < len(self._segments) - 1 and self._segments[idx].end <= now:
            idx += 1
        seg = self._segments[idx]
        return seg.place if seg.kind == "stay" else None

    def stationary_hours_in_day(self, day: int) -> float:
        """Hours spent in 'stay' segments at home during ``day`` — used to
        verify the paper's 5-8 h/day sleep-stationarity claim."""
        self._ensure_time_covered((day + 1) * _DAY)
        t0, t1 = day * _DAY, (day + 1) * _DAY
        total = 0.0
        for seg in self._segments:
            if seg.kind != "stay" or seg.place is not self.schedule.home:
                continue
            lo = max(seg.start, t0)
            hi = min(seg.end, t1)
            if hi > lo:
                total += hi - lo
        return total / _HOUR
