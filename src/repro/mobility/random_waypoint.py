"""Random waypoint mobility (the standard DTN simulation baseline).

A node repeatedly: picks a uniform destination in the region, travels to
it in a straight line at a uniform-random speed, pauses, repeats.  Used by
the ablation benches to contrast the paper's realistic conditions with the
"50 to 100 nodes in 0.25-4 km^2" settings §VI criticises.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.geo.point import Point
from repro.geo.region import Region
from repro.mobility.base import MobilityModel


class RandomWaypoint(MobilityModel):
    """Classic random-waypoint movement as a two-state machine
    (paused-at-waypoint / moving-to-waypoint) advanced lazily on query.

    Parameters
    ----------
    region:
        The movement area.
    rng:
        Random stream (one per node for independence).
    speed_range:
        Uniform speed bounds in m/s; default spans walking to cycling.
    pause_range:
        Uniform pause bounds at each waypoint, in seconds.
    start:
        Initial position (uniform random when omitted).
    """

    def __init__(
        self,
        region: Region,
        rng: random.Random,
        speed_range: Tuple[float, float] = (0.8, 4.0),
        pause_range: Tuple[float, float] = (0.0, 300.0),
        start: Optional[Point] = None,
    ) -> None:
        if speed_range[0] <= 0 or speed_range[1] < speed_range[0]:
            raise ValueError(f"invalid speed range {speed_range!r}")
        if pause_range[0] < 0 or pause_range[1] < pause_range[0]:
            raise ValueError(f"invalid pause range {pause_range!r}")
        self.region = region
        self._rng = rng
        self.speed_range = speed_range
        self.pause_range = pause_range
        self._position = start if start is not None else region.random_point(rng)
        self._time = 0.0
        # State: either paused until _pause_end, or moving to _target.
        self._pause_end: Optional[float] = 0.0  # start by immediately picking a leg
        self._target: Optional[Point] = None
        self._speed = 1.0

    def max_speed_m_s(self) -> float:
        return self.speed_range[1]

    def _begin_move(self) -> None:
        self._target = self.region.random_point(self._rng)
        self._speed = self._rng.uniform(*self.speed_range)
        self._pause_end = None

    def _begin_pause(self) -> None:
        self._pause_end = self._time + self._rng.uniform(*self.pause_range)
        self._target = None

    def position_at(self, now: float) -> Point:
        if now < self._time:
            raise ValueError(f"time moved backwards: {now} < {self._time}")
        while self._time < now:
            if self._pause_end is not None:
                if self._pause_end >= now:
                    self._time = now
                    break
                self._time = self._pause_end
                self._begin_move()
            else:
                travel_time = self._position.distance_to(self._target) / self._speed
                arrival = self._time + travel_time
                if arrival > now:
                    self._position = self._position.moved_towards(
                        self._target, (now - self._time) * self._speed
                    )
                    self._time = now
                    break
                self._position = self._target
                self._time = arrival
                self._begin_pause()
        return self._position
