"""Mobility model interface.

Models are *pull-driven*: the radio medium ticks at a fixed cadence and
asks each model for its position at the current simulation time via
:meth:`MobilityModel.position_at`.  Calls must be made with non-decreasing
times; models may keep internal waypoint state between calls.

The medium's batched tick advances whole populations at once through the
class-level :meth:`MobilityModel.positions_at` hook: it groups devices by
mobility class and issues one call per class.  The base implementation
just loops :meth:`position_at`; subclasses whose state allows it (e.g.
:class:`StationaryModel`) answer for the whole group without a per-node
Python call.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from repro.geo.point import Point


class MobilityModel(ABC):
    """Produces a node's position as a function of simulation time."""

    @abstractmethod
    def position_at(self, now: float) -> Point:
        """Position at time ``now`` (seconds).  ``now`` must not decrease
        across calls."""

    @classmethod
    def positions_at(cls, models: Sequence["MobilityModel"], now: float) -> List[Point]:
        """Batch API: positions of many models of this class at ``now``.

        The fallback loops :meth:`position_at`; override when a whole
        population can be advanced more cheaply than node-by-node.
        """
        return [model.position_at(now) for model in models]

    def max_speed_m_s(self) -> Optional[float]:
        """Upper bound on this node's speed in m/s, or None if unknown.

        A bound lets the medium prove a distant pair cannot possibly come
        into radio range before some future time and skip re-examining it
        until then.  The bound must hold for *every* position the model
        can ever produce — models that may reposition discontinuously
        (agenda rebuilds, trace gaps) must return None.
        """
        return None

    def warm_up(self, now: float) -> None:
        """Optional hook: advance internal state to ``now`` before the
        measurement window opens."""
        self.position_at(now)


class StationaryModel(MobilityModel):
    """A node that never moves (infrastructure WiFi hotspots, kiosks)."""

    def __init__(self, position: Point) -> None:
        self._position = position

    def position_at(self, now: float) -> Point:
        return self._position

    @classmethod
    def positions_at(cls, models: Sequence["MobilityModel"], now: float) -> List[Point]:
        if cls.position_at is not StationaryModel.position_at:
            # A subclass overrode the scalar query (jitter, delayed
            # placement, ...): honour it instead of the _position shortcut.
            return [model.position_at(now) for model in models]
        return [model._position for model in models]

    def max_speed_m_s(self) -> float:
        return 0.0
