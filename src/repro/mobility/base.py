"""Mobility model interface.

Models are *pull-driven*: the radio medium ticks at a fixed cadence and
asks each model for its position at the current simulation time via
:meth:`MobilityModel.position_at`.  Calls must be made with non-decreasing
times; models may keep internal waypoint state between calls.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.geo.point import Point


class MobilityModel(ABC):
    """Produces a node's position as a function of simulation time."""

    @abstractmethod
    def position_at(self, now: float) -> Point:
        """Position at time ``now`` (seconds).  ``now`` must not decrease
        across calls."""

    def warm_up(self, now: float) -> None:
        """Optional hook: advance internal state to ``now`` before the
        measurement window opens."""
        self.position_at(now)


class StationaryModel(MobilityModel):
    """A node that never moves (infrastructure WiFi hotspots, kiosks)."""

    def __init__(self, position: Point) -> None:
        self._position = position

    def position_at(self, now: float) -> Point:
        return self._position
