"""Per-device key and certificate storage.

Models the iOS keychain role in SOS: it holds the device's own private key
and certificate, the CA root installed at sign-up, and a cache of peer
certificates learned over D2D connections (including certificates
*forwarded* on behalf of message originators, paper Fig. 3b).

Credentials arrive in one of two ways:

* :meth:`KeyStore.provision` installs fully materialised material — the
  eager Fig. 2a flow (:func:`repro.alleyoop.signup.sign_up`);
* :meth:`KeyStore.provision_deferred` installs the CA root plus a
  *materialiser* callback, and the private key / certificate are only
  computed on first access — the lazy provisioning mode
  (:mod:`repro.pki.provisioning`) that keeps RSA key generation out of
  world construction.

Either way the store reports :attr:`~KeyStore.provisioned` and validates
peer certificates immediately; only operations that *use* the local
private key or certificate trigger materialisation.

Example — provision a keystore from a locally-run CA and validate a peer
(1024-bit simulation keys; real deployments use ≥ 2048)::

    >>> from repro.crypto.drbg import HmacDrbg
    >>> from repro.crypto.rsa import generate_keypair
    >>> from repro.pki.ca import CertificateAuthority
    >>> from repro.pki.certificate import DistinguishedName
    >>> from repro.pki.csr import CertificateSigningRequest
    >>> ca = CertificateAuthority(rng=HmacDrbg.from_int(1), key_bits=512)
    >>> keypair = generate_keypair(512, rng=HmacDrbg.from_int(2))
    >>> csr = CertificateSigningRequest.create(
    ...     subject=DistinguishedName(common_name="alice"),
    ...     private_key=keypair.private, user_id="u000000001")
    >>> cert = ca.issue(csr, now=0.0, expected_user_id="u000000001")
    >>> store = KeyStore()
    >>> store.provision(keypair.private, cert, root=ca.root_certificate)
    >>> store.provisioned
    True
    >>> store.validate_and_cache(cert, now=1.0).ok
    True
    >>> store.known_peers()
    ['u000000001']
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.crypto.rsa import RsaPrivateKey
from repro.pki.certificate import Certificate
from repro.pki.revocation import RevocationList
from repro.pki.validation import CertificateValidator, ValidationResult

#: A deferred-credentials callback: computes ``(private key, certificate)``
#: exactly once, on first use (see :meth:`KeyStore.provision_deferred`).
CredentialMaterializer = Callable[[], Tuple[RsaPrivateKey, Certificate]]


class KeyStore:
    """Device-local trust store.

    Attributes
    ----------
    root_certificate:
        The CA root installed at sign-up; anchor for all validation.
    """

    def __init__(self) -> None:
        self._private_key: Optional[RsaPrivateKey] = None
        self._own_certificate: Optional[Certificate] = None
        self.root_certificate: Optional[Certificate] = None
        self._materializer: Optional[CredentialMaterializer] = None
        self._peer_certs: Dict[str, Certificate] = {}
        self._revocations = RevocationList()
        self._validator: Optional[CertificateValidator] = None

    # -- provisioning (the Fig. 2a one-time step) ----------------------------
    def provision(
        self,
        private_key: RsaPrivateKey,
        certificate: Certificate,
        root: Certificate,
    ) -> None:
        """Install the material obtained during sign-up.

        Args:
            private_key: The device's own RSA private key.
            certificate: The CA-issued certificate over the matching
                public key.
            root: The CA root certificate (trust anchor).

        Raises:
            ValueError: If ``certificate`` does not certify
                ``private_key``'s public half.
        """
        if certificate.public_key != private_key.public_key():
            raise ValueError("certificate does not match the private key")
        self._private_key = private_key
        self._own_certificate = certificate
        self._materializer = None
        self.root_certificate = root
        self._validator = CertificateValidator(root=root, revocations=self._revocations)

    def provision_deferred(
        self, materializer: CredentialMaterializer, root: Certificate
    ) -> None:
        """Install the CA root now and defer the own-key material.

        The store becomes :attr:`provisioned` (it can validate peers and
        sync revocations), but ``materializer`` only runs — once — when
        :attr:`private_key` or :attr:`own_certificate` is first read.
        This is the lazy sign-up hook (:mod:`repro.pki.provisioning`):
        a simulated device that never secures a link or posts never pays
        for RSA key generation.

        Args:
            materializer: Zero-argument callable returning the
                ``(private key, certificate)`` pair that sign-up produced.
            root: The CA root certificate (trust anchor).
        """
        self._materializer = materializer
        self._private_key = None
        self._own_certificate = None
        self.root_certificate = root
        self._validator = CertificateValidator(root=root, revocations=self._revocations)

    def _materialize(self) -> None:
        if self._materializer is None:
            return
        # Install first, clear the callback only on success: a failing
        # materialiser must raise again on every later access instead of
        # silently degrading the store to None credentials.
        private_key, certificate = self._materializer()
        if certificate.public_key != private_key.public_key():
            raise ValueError("materialised certificate does not match the private key")
        self._private_key = private_key
        self._own_certificate = certificate
        self._materializer = None

    @property
    def private_key(self) -> Optional[RsaPrivateKey]:
        """The device's own private key (materialised on first access)."""
        if self._private_key is None and self._materializer is not None:
            self._materialize()
        return self._private_key

    @private_key.setter
    def private_key(self, value: Optional[RsaPrivateKey]) -> None:
        self._private_key = value

    @property
    def own_certificate(self) -> Optional[Certificate]:
        """The device's own certificate (materialised on first access)."""
        if self._own_certificate is None and self._materializer is not None:
            self._materialize()
        return self._own_certificate

    @own_certificate.setter
    def own_certificate(self, value: Optional[Certificate]) -> None:
        self._own_certificate = value

    @property
    def provisioned(self) -> bool:
        """True once sign-up completed (eagerly or deferred)."""
        return self._validator is not None

    @property
    def materialized(self) -> bool:
        """True once the own-key material actually exists in memory.

        Always true after :meth:`provision`; after
        :meth:`provision_deferred` it flips on the first
        :attr:`private_key` / :attr:`own_certificate` access.  The
        provisioning benchmarks read this to count how many simulated
        devices ever paid for key generation.
        """
        return self._private_key is not None

    def _require_validator(self) -> CertificateValidator:
        if self._validator is None:
            raise RuntimeError("keystore not provisioned; complete sign-up first")
        return self._validator

    # -- peer certificates ----------------------------------------------------
    def validate_and_cache(
        self,
        certificate: Certificate,
        now: float,
        expected_user_id: Optional[str] = None,
    ) -> ValidationResult:
        """Validate a peer (or forwarded-originator) certificate; cache on
        success, keyed by user-identifier.

        Args:
            certificate: The certificate received over the D2D link.
            now: Current simulation time (validity-window check).
            expected_user_id: When given, the user-identifier the peer
                claimed out of band; a mismatch fails validation (paper
                §IV impersonation defence).

        Returns:
            The full :class:`~repro.pki.validation.ValidationResult`;
            ``result.ok`` tells whether the certificate was cached.
        """
        result = self._require_validator().validate(
            certificate, now, expected_user_id=expected_user_id
        )
        if result.ok:
            self._peer_certs[certificate.user_id] = certificate
        return result

    def peer_certificate(self, user_id: str) -> Optional[Certificate]:
        """The cached certificate for ``user_id``, if any."""
        return self._peer_certs.get(user_id)

    def known_peers(self) -> List[str]:
        """Sorted user-identifiers with cached certificates."""
        return sorted(self._peer_certs)

    def forget_peer(self, user_id: str) -> None:
        """Drop ``user_id``'s cached certificate (no-op if absent)."""
        self._peer_certs.pop(user_id, None)

    # -- revocation sync --------------------------------------------------------
    def sync_revocations(self, authority_crl: RevocationList) -> None:
        """Copy the CA's CRL; only possible with infrastructure (paper §IV).

        Cached certificates that are now revoked are evicted immediately.

        Args:
            authority_crl: The CA's current revocation list (snapshotted,
                so later CA-side changes don't leak in).
        """
        self._revocations = authority_crl.snapshot()
        if self._validator is not None:
            self._validator.update_revocations(self._revocations)
        revoked_users = [
            uid
            for uid, cert in self._peer_certs.items()
            if self._revocations.is_revoked(cert.serial)
        ]
        for uid in revoked_users:
            del self._peer_certs[uid]

    @property
    def revocation_version(self) -> int:
        """Monotonic version of the last-synced CRL (cache invalidation)."""
        return self._revocations.version
