"""Per-device key and certificate storage.

Models the iOS keychain role in SOS: it holds the device's own private key
and certificate, the CA root installed at sign-up, and a cache of peer
certificates learned over D2D connections (including certificates
*forwarded* on behalf of message originators, paper Fig. 3b).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.crypto.rsa import RsaPrivateKey
from repro.pki.certificate import Certificate
from repro.pki.revocation import RevocationList
from repro.pki.validation import CertificateValidator, ValidationResult


class KeyStore:
    """Device-local trust store."""

    def __init__(self) -> None:
        self.private_key: Optional[RsaPrivateKey] = None
        self.own_certificate: Optional[Certificate] = None
        self.root_certificate: Optional[Certificate] = None
        self._peer_certs: Dict[str, Certificate] = {}
        self._revocations = RevocationList()
        self._validator: Optional[CertificateValidator] = None

    # -- provisioning (the Fig. 2a one-time step) ----------------------------
    def provision(
        self,
        private_key: RsaPrivateKey,
        certificate: Certificate,
        root: Certificate,
    ) -> None:
        """Install the material obtained during sign-up."""
        if certificate.public_key != private_key.public_key():
            raise ValueError("certificate does not match the private key")
        self.private_key = private_key
        self.own_certificate = certificate
        self.root_certificate = root
        self._validator = CertificateValidator(root=root, revocations=self._revocations)

    @property
    def provisioned(self) -> bool:
        return self._validator is not None

    def _require_validator(self) -> CertificateValidator:
        if self._validator is None:
            raise RuntimeError("keystore not provisioned; complete sign-up first")
        return self._validator

    # -- peer certificates ----------------------------------------------------
    def validate_and_cache(
        self,
        certificate: Certificate,
        now: float,
        expected_user_id: Optional[str] = None,
    ) -> ValidationResult:
        """Validate a peer (or forwarded-originator) certificate; cache on
        success, keyed by user-identifier."""
        result = self._require_validator().validate(
            certificate, now, expected_user_id=expected_user_id
        )
        if result.ok:
            self._peer_certs[certificate.user_id] = certificate
        return result

    def peer_certificate(self, user_id: str) -> Optional[Certificate]:
        return self._peer_certs.get(user_id)

    def known_peers(self) -> list:
        return sorted(self._peer_certs)

    def forget_peer(self, user_id: str) -> None:
        self._peer_certs.pop(user_id, None)

    # -- revocation sync --------------------------------------------------------
    def sync_revocations(self, authority_crl: RevocationList) -> None:
        """Copy the CA's CRL; only possible with infrastructure (paper §IV).

        Cached certificates that are now revoked are evicted immediately.
        """
        self._revocations = authority_crl.snapshot()
        if self._validator is not None:
            self._validator.update_revocations(self._revocations)
        revoked_users = [
            uid
            for uid, cert in self._peer_certs.items()
            if self._revocations.is_revoked(cert.serial)
        ]
        for uid in revoked_users:
            del self._peer_certs[uid]

    @property
    def revocation_version(self) -> int:
        return self._revocations.version
