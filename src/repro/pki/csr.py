"""Certificate signing requests.

In the paper's Fig. 2a flow the device sends its public key and claimed
unique user-identifier to the cloud, which relays it to the CA.  A CSR is
self-signed (proof of possession of the private key) so a malicious cloud
cannot substitute its own key for the user's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.pki.certificate import CertificateError, DistinguishedName, _pack_bytes, _pack_str, _Reader


@dataclass(frozen=True)
class CertificateSigningRequest:
    """A self-signed request for certification."""

    subject: DistinguishedName
    public_key: RsaPublicKey
    user_id: str
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        return (
            b"SOSR\x01"
            + self.subject.encode()
            + _pack_bytes(self.public_key.to_bytes())
            + _pack_str(self.user_id)
        )

    def encode(self) -> bytes:
        return _pack_bytes(self.tbs_bytes()) + _pack_bytes(self.signature)

    @classmethod
    def decode(cls, data: bytes) -> "CertificateSigningRequest":
        outer = _Reader(data)
        tbs = outer.read_bytes()
        signature = outer.read_bytes()
        reader = _Reader(tbs)
        magic = reader._take(5)
        if magic != b"SOSR\x01":
            raise CertificateError(f"unsupported CSR format {magic!r}")
        subject = DistinguishedName.decode(reader)
        try:
            public_key = RsaPublicKey.from_bytes(reader.read_bytes())
        except ValueError as exc:
            raise CertificateError(f"malformed public key: {exc}") from exc
        user_id = reader.read_str()
        return cls(subject=subject, public_key=public_key, user_id=user_id, signature=signature)

    @classmethod
    def create(
        cls,
        subject: DistinguishedName,
        private_key: RsaPrivateKey,
        user_id: str,
    ) -> "CertificateSigningRequest":
        """Build and self-sign a request (proof of key possession)."""
        unsigned = cls(subject=subject, public_key=private_key.public_key(), user_id=user_id)
        signature = private_key.sign(unsigned.tbs_bytes())
        return cls(
            subject=subject,
            public_key=private_key.public_key(),
            user_id=user_id,
            signature=signature,
        )

    def verify(self) -> bool:
        """Check the self-signature: the requester holds the private key."""
        if not self.signature:
            return False
        return self.public_key.verify(self.tbs_bytes(), self.signature)
