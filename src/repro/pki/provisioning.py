"""Identity provisioning: keypair pool, lazy sign-up, parallel prefetch.

Every AlleyOop Social user holds an RSA key pair minted at sign-up (paper
Fig. 2a).  In the reproduction that keygen is pure build-time cost —
~0.2 s per user at the 1024-bit simulation key size — and after the
batched medium (PR 1) and the session-crypto layer (PR 2) it is what
makes large-N secured sweeps intractable.  This module removes keygen
from the world-construction hot path three ways, selected by the
``provisioning`` knob (:class:`repro.core.config.SosConfig` /
:class:`repro.experiments.scenario.ScenarioConfig`):

``eager``
    The reference flow: generate on-device during sign-up, exactly as the
    paper describes and exactly as the seed code behaved.  The oracle the
    other two modes are verified against.
``pooled``
    Key pairs come from a :class:`KeypairPool` — a deterministic cache
    keyed by ``(bits, seed, index)`` with an optional on-disk store, so
    repeated sweeps pay keygen once, and :meth:`KeypairPool.prefetch` can
    spread the initial generation over ``multiprocessing`` workers.
``lazy``
    Sign-up installs a *placeholder*: account + reserved certificate
    serial + CA root now, key pair and certificate only on first secured
    send/receive (first :attr:`~repro.pki.keystore.KeyStore.private_key`
    access).  A device that never secures a link never pays keygen.

All three modes produce **byte-identical** key pairs and certificates for
a fixed scenario seed: the per-user DRBG seed is the pure function
:func:`signup_drbg_seed` of ``(scenario seed, user index)`` regardless of
who generates when, and lazy issuance reuses the serial reserved at
sign-up time — so delivery/delay traces are identical across modes
(asserted end to end by ``benchmarks/test_bench_provisioning.py``).

Deterministic pooling example (512-bit keys for speed)::

    >>> pool = KeypairPool()
    >>> a = pool.get(512, seed=2017, index=0)
    >>> b = pool.get(512, seed=2017, index=0)   # memory hit, same object
    >>> a is b
    True
    >>> from repro.crypto.drbg import HmacDrbg
    >>> from repro.crypto.rsa import generate_keypair
    >>> direct = generate_keypair(512, rng=HmacDrbg.from_int(signup_drbg_seed(2017, 0)))
    >>> a.public == direct.public               # == the eager flow's key
    True
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaKeyPair, RsaPrivateKey, generate_keypair
from repro.pki.certificate import DistinguishedName
from repro.pki.csr import CertificateSigningRequest
from repro.pki.keystore import KeyStore
from repro.sim.parallel import parallel_map

#: The three provisioning strategies, in reference-first order.
PROVISIONING_MODES = ("eager", "pooled", "lazy")

#: Environment variable naming a default on-disk key cache directory.
KEY_CACHE_ENV = "REPRO_KEY_CACHE"

#: On-disk key file magic/version line.
_KEY_MAGIC = "SOSKEY1"


def signup_drbg_seed(scenario_seed: int, index: int) -> int:
    """The per-user key-generation DRBG seed.

    A pure function of the scenario seed and the user's sign-up index —
    the single source of truth that makes eager, pooled and lazy
    provisioning (and any mix of processes computing them) produce
    byte-identical key pairs.  The constant matches the seed derivation
    the original eager study build used, so default traces are unchanged.
    """
    return scenario_seed * 104729 + index


def default_cache_dir() -> Optional[str]:
    """The ``$REPRO_KEY_CACHE`` directory, or ``None`` for memory-only."""
    return os.environ.get(KEY_CACHE_ENV) or None


def _generate_pool_entry(task: Tuple[int, int, int]) -> Tuple[int, RsaKeyPair]:
    """Worker body for parallel prefetch: one fully deterministic entry.

    Each worker seeds its own DRBG from the entry's ``(bits, seed,
    index)`` spec, so results are independent of worker count, scheduling
    and chunking — a parallel prefetch is bit-for-bit the serial one.
    """
    bits, seed, index = task
    rng = HmacDrbg.from_int(signup_drbg_seed(seed, index))
    return index, generate_keypair(bits, rng=rng)


class KeypairPool:
    """A deterministic RSA keypair cache keyed by ``(bits, seed, index)``.

    Entries are generated on demand from the keyed DRBG (so a pool is
    *transparent*: pooled runs equal eager runs byte for byte), held in
    memory, and — when ``cache_dir`` is set — persisted to one small file
    per key so later processes and repeated sweeps skip keygen entirely.

    Disk writes are atomic (write-temp + ``os.replace``), which makes a
    cache directory safe to share between concurrent sweep workers: both
    would write identical bytes anyway.
    """

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self.cache_dir: Optional[Path] = Path(cache_dir) if cache_dir else None
        self._memory: Dict[Tuple[int, int, int], RsaKeyPair] = {}
        self.stats = {"memory_hits": 0, "disk_hits": 0, "generated": 0}

    # -- key derivation -------------------------------------------------------
    def _path_for(self, bits: int, seed: int, index: int) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"rsa-{bits}b-s{seed}-i{index}.key"

    def get(self, bits: int, seed: int, index: int) -> RsaKeyPair:
        """The key pair for ``(bits, seed, index)`` — memory, then disk,
        then deterministic generation (cached both ways)."""
        key = (bits, seed, index)
        cached = self._memory.get(key)
        if cached is not None:
            self.stats["memory_hits"] += 1
            return cached
        loaded = self._load(bits, seed, index)
        if loaded is not None:
            self.stats["disk_hits"] += 1
            self._memory[key] = loaded
            return loaded
        _, keypair = _generate_pool_entry((bits, seed, index))
        self.stats["generated"] += 1
        self._memory[key] = keypair
        self._store(bits, seed, index, keypair)
        return keypair

    def prefetch(
        self,
        bits: int,
        seed: int,
        indices: Iterable[int],
        workers: int = 1,
    ) -> int:
        """Ensure every ``(bits, seed, index)`` entry exists; returns how
        many had to be generated.

        With ``workers > 1`` the missing entries are generated by a
        ``multiprocessing`` pool; each task carries its own DRBG spec
        (see :func:`_generate_pool_entry`), so assignment to workers is
        irrelevant to the result and the prefetch stays deterministic.
        Falls back to in-process generation where ``fork`` is unavailable.
        """
        wanted = [
            (bits, seed, index)
            for index in indices
            if (bits, seed, index) not in self._memory
        ]
        missing: List[Tuple[int, int, int]] = []
        for task in wanted:
            loaded = self._load(*task)
            if loaded is not None:
                self.stats["disk_hits"] += 1
                self._memory[task] = loaded
            else:
                missing.append(task)
        if not missing:
            return 0
        # parallel_map preserves task order, so results line up with
        # ``missing`` regardless of which worker ran what.
        results = parallel_map(_generate_pool_entry, missing, workers)
        for task, (_, keypair) in zip(missing, results):
            self.stats["generated"] += 1
            self._memory[task] = keypair
            self._store(*task, keypair)
        return len(missing)

    # -- disk layer -----------------------------------------------------------
    def _load(self, bits: int, seed: int, index: int) -> Optional[RsaKeyPair]:
        path = self._path_for(bits, seed, index)
        if path is None or not path.is_file():
            return None
        try:
            lines = path.read_text().split()
            if lines[0] != _KEY_MAGIC or len(lines) != 6:
                return None
            n, e, d, p, q = (int(value) for value in lines[1:])
        except (OSError, ValueError, IndexError):
            return None  # unreadable/corrupt: regenerate and overwrite
        if p * q != n or n.bit_length() != bits:
            return None
        return RsaKeyPair(private=RsaPrivateKey(n=n, e=e, d=d, p=p, q=q))

    def _store(self, bits: int, seed: int, index: int, keypair: RsaKeyPair) -> None:
        path = self._path_for(bits, seed, index)
        if path is None:
            return
        private = keypair.private
        body = "\n".join(
            (_KEY_MAGIC, str(private.n), str(private.e), str(private.d),
             str(private.p), str(private.q))
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
            )
            with os.fdopen(fd, "w") as handle:
                handle.write(body + "\n")
            os.replace(tmp_name, path)
        except OSError:
            pass  # cache is best-effort; generation already succeeded

    @property
    def size(self) -> int:
        """Entries currently held in memory."""
        return len(self._memory)


def provision_user(
    cloud,
    username: str,
    *,
    seed: int,
    index: int,
    now: float,
    key_bits: int = 1024,
    mode: str = "eager",
    pool: Optional[KeypairPool] = None,
):
    """Sign ``username`` up under the selected provisioning strategy.

    The one entry point world builders call per user
    (:class:`repro.experiments.gainesville.GainesvilleStudy` threads its
    scenario's ``provisioning`` knob straight here).  All modes return a
    :class:`~repro.alleyoop.signup.SignupResult`; under ``lazy`` its
    ``certificate`` is ``None`` until the keystore materialises.

    Args:
        cloud: The :class:`~repro.alleyoop.cloud.CloudService` to sign up
            against (must be online — the one-time requirement).
        username: Account name to register.
        seed: Scenario master seed (key DRBGs derive from it).
        index: This user's sign-up index (0-based, in sign-up order).
        now: Simulation time of the sign-up.
        key_bits: RSA modulus size.
        mode: One of :data:`PROVISIONING_MODES`.
        pool: Keypair source for ``pooled`` (created ad hoc when omitted)
            and, optionally, for ``lazy`` materialisation.

    Returns:
        The sign-up result; its ``keystore`` is ready for middleware use.
    """
    # Imported here: pki is a lower layer than alleyoop, and this helper
    # is the one place the provisioning subsystem drives the cloud flow.
    from repro.alleyoop.signup import SignupResult, sign_up

    if mode not in PROVISIONING_MODES:
        raise ValueError(
            f"unknown provisioning mode {mode!r}; expected one of {PROVISIONING_MODES}"
        )
    drbg_seed = signup_drbg_seed(seed, index)
    if mode == "eager":
        return sign_up(
            cloud, username, rng=HmacDrbg.from_int(drbg_seed), now=now, key_bits=key_bits
        )
    if mode == "pooled":
        pool = pool if pool is not None else KeypairPool(default_cache_dir())
        keypair = pool.get(key_bits, seed, index)
        return sign_up(
            cloud,
            username,
            rng=HmacDrbg.from_int(drbg_seed),
            now=now,
            key_bits=key_bits,
            keypair=keypair,
        )

    # -- lazy: account + serial reservation now, crypto on first use ---------
    account = cloud.create_account(username, now=now)
    serial = cloud.ca.reserve_serial()
    root = cloud.root_certificate

    def materialize():
        if pool is not None:
            keypair = pool.get(key_bits, seed, index)
        else:
            keypair = generate_keypair(key_bits, rng=HmacDrbg.from_int(drbg_seed))
        csr = CertificateSigningRequest.create(
            subject=DistinguishedName(common_name=username),
            private_key=keypair.private,
            user_id=account.user_id,
        )
        certificate = cloud.fulfil_deferred_certificate(
            username, csr, serial=serial, signup_time=now
        )
        return keypair.private, certificate

    keystore = KeyStore()
    keystore.provision_deferred(materialize, root=root)
    keystore.sync_revocations(cloud.ca.revocations)
    return SignupResult(
        username=username,
        user_id=account.user_id,
        keystore=keystore,
        certificate=None,
    )
