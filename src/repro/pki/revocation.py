"""Certificate revocation lists.

The paper notes (§IV) that revocation is one of the operations that still
requires an Internet connection: a device that never syncs keeps trusting a
revoked certificate.  We model the CRL as a timestamped list that devices
copy *when they have connectivity*, so experiments can quantify the window
of exposure between revocation at the CA and propagation to devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class RevocationEntry:
    serial: int
    revoked_at: float
    reason: str


class RevocationList:
    """A monotonically growing set of revoked serial numbers."""

    def __init__(self) -> None:
        self._entries: Dict[int, RevocationEntry] = {}
        self.version = 0

    def revoke(self, serial: int, now: float, reason: str = "unspecified") -> None:
        if serial in self._entries:
            return  # idempotent
        self._entries[serial] = RevocationEntry(serial=serial, revoked_at=now, reason=reason)
        self.version += 1

    def is_revoked(self, serial: int) -> bool:
        return serial in self._entries

    def entry(self, serial: int) -> Optional[RevocationEntry]:
        return self._entries.get(serial)

    def snapshot(self) -> "RevocationList":
        """A device-side copy taken during a sync with infrastructure."""
        copy = RevocationList()
        copy._entries = dict(self._entries)
        copy.version = self.version
        return copy

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, serial: int) -> bool:
        return serial in self._entries
