"""Certificate validation as performed on-device by the ad hoc manager.

Validation is fully offline: it needs only the root certificate installed
at sign-up and the device's last-synced revocation snapshot.  This is what
lets AlleyOop Social forward Alice's certificate through Bob to Carol
(paper Fig. 3b) and have Carol verify provenance with no infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.pki.certificate import Certificate
from repro.pki.revocation import RevocationList


class ValidationResult(Enum):
    """Outcome of a certificate validation attempt."""

    VALID = "valid"
    BAD_SIGNATURE = "bad_signature"
    EXPIRED = "expired"
    NOT_YET_VALID = "not_yet_valid"
    REVOKED = "revoked"
    UNTRUSTED_ISSUER = "untrusted_issuer"
    USER_ID_MISMATCH = "user_id_mismatch"

    @property
    def ok(self) -> bool:
        return self is ValidationResult.VALID


@dataclass
class CertificateValidator:
    """Validates end-entity certificates against one trusted root.

    Parameters
    ----------
    root:
        The CA root certificate installed during sign-up.
    revocations:
        The device's local revocation snapshot (may lag the CA's, which is
        exactly the exposure the paper discusses).
    """

    root: Certificate
    revocations: Optional[RevocationList] = None

    def __post_init__(self) -> None:
        if not self.root.is_ca:
            raise ValueError("trust anchor must be a CA certificate")
        if not self.root.is_self_signed():
            raise ValueError("trust anchor must be self-signed and self-consistent")

    def validate(
        self,
        certificate: Certificate,
        now: float,
        expected_user_id: Optional[str] = None,
    ) -> ValidationResult:
        """Validate ``certificate`` at time ``now``.

        ``expected_user_id`` pins the certificate to the identity claimed
        in a plain-text advertisement or message header; a mismatch means
        someone is presenting a valid certificate for the *wrong* user.
        """
        if certificate.issuer != self.root.subject:
            return ValidationResult.UNTRUSTED_ISSUER
        if not certificate.verify_signature(self.root.public_key):
            return ValidationResult.BAD_SIGNATURE
        if now < certificate.not_before:
            return ValidationResult.NOT_YET_VALID
        if now > certificate.not_after:
            return ValidationResult.EXPIRED
        if self.revocations is not None and self.revocations.is_revoked(certificate.serial):
            return ValidationResult.REVOKED
        if expected_user_id is not None and certificate.user_id != expected_user_id:
            return ValidationResult.USER_ID_MISMATCH
        return ValidationResult.VALID

    def update_revocations(self, fresh: RevocationList) -> None:
        """Replace the local snapshot after an infrastructure sync."""
        self.revocations = fresh.snapshot()
