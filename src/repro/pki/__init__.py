"""Public-key infrastructure for SOS (paper §IV, Fig. 2a).

AlleyOop Social's security model is a deliberately simple, one-time PKI:

1. during sign-up (with Internet), the device generates a key pair and
   sends a certificate signing request to the AlleyOop CA,
2. the cloud cross-checks that the unique user-identifier in the request
   matches the logged-in user (the paper's mitigation for impersonation),
3. the CA returns an X.509-style certificate plus its root certificate,
4. from then on no infrastructure is needed: devices authenticate each
   other and verify forwarded messages offline using the root certificate.

This package implements the certificate format, the certificate authority,
chain validation with expiry/revocation checks, and the device keystore.
"""

from repro.pki.certificate import Certificate, CertificateError, DistinguishedName
from repro.pki.csr import CertificateSigningRequest
from repro.pki.ca import CertificateAuthority
from repro.pki.validation import CertificateValidator, ValidationResult
from repro.pki.revocation import RevocationList
from repro.pki.keystore import KeyStore
from repro.pki.provisioning import (
    PROVISIONING_MODES,
    KeypairPool,
    provision_user,
    signup_drbg_seed,
)

__all__ = [
    "PROVISIONING_MODES",
    "KeypairPool",
    "provision_user",
    "signup_drbg_seed",
    "Certificate",
    "CertificateError",
    "DistinguishedName",
    "CertificateSigningRequest",
    "CertificateAuthority",
    "CertificateValidator",
    "ValidationResult",
    "RevocationList",
    "KeyStore",
]
