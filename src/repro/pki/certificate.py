"""X.509-style certificates.

Full ASN.1/DER X.509 is out of scope (and irrelevant to the protocol the
paper evaluates); what matters is the *shape* of an X.509 certificate:
subject and issuer distinguished names, a validity window, the subject's
public key, a unique user-identifier extension (the 10-byte AlleyOop user
id), a serial number, and an issuer signature over the canonical encoding
of everything above.  This module implements exactly that with a
deterministic, length-prefixed binary encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crypto.hashes import sha256
from repro.crypto.rsa import RsaPublicKey


class CertificateError(ValueError):
    """Raised for malformed or inconsistent certificate material."""


def _pack_str(s: str) -> bytes:
    raw = s.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise CertificateError("string field too long")
    return len(raw).to_bytes(2, "big") + raw


def _pack_bytes(b: bytes) -> bytes:
    if len(b) > 0xFFFFFFFF:
        raise CertificateError("byte field too long")
    return len(b).to_bytes(4, "big") + b


class _Reader:
    """Sequential reader over a length-prefixed encoding."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read_str(self) -> str:
        n = int.from_bytes(self._take(2), "big")
        try:
            return self._take(n).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CertificateError(f"invalid UTF-8 in encoding: {exc}") from exc

    def read_bytes(self) -> bytes:
        n = int.from_bytes(self._take(4), "big")
        return self._take(n)

    def read_f64(self) -> float:
        import struct

        return struct.unpack(">d", self._take(8))[0]

    def read_u32(self) -> int:
        return int.from_bytes(self._take(4), "big")

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise CertificateError("truncated certificate encoding")
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._data)


@dataclass(frozen=True)
class DistinguishedName:
    """A minimal distinguished name (common name + organisation)."""

    common_name: str
    organization: str = "AlleyOop Social"

    def encode(self) -> bytes:
        return _pack_str(self.common_name) + _pack_str(self.organization)

    @classmethod
    def decode(cls, reader: "_Reader") -> "DistinguishedName":
        return cls(common_name=reader.read_str(), organization=reader.read_str())

    def __str__(self) -> str:
        return f"CN={self.common_name},O={self.organization}"


@dataclass(frozen=True)
class Certificate:
    """An issued certificate.

    ``user_id`` carries the paper's 10-byte unique user-identifier string
    (§V-A); it is the value advertised in plain-text discovery dictionaries
    and the key that message provenance is verified against.
    """

    subject: DistinguishedName
    issuer: DistinguishedName
    public_key: RsaPublicKey
    serial: int
    not_before: float
    not_after: float
    user_id: str
    is_ca: bool = False
    extensions: Dict[str, str] = field(default_factory=dict)
    signature: bytes = b""

    # -- encoding -----------------------------------------------------------
    def tbs_bytes(self) -> bytes:
        """The to-be-signed canonical encoding (everything but the
        signature)."""
        import struct

        parts = [
            b"SOSC\x01",  # format magic + version
            self.subject.encode(),
            self.issuer.encode(),
            _pack_bytes(self.public_key.to_bytes()),
            self.serial.to_bytes(8, "big"),
            struct.pack(">d", self.not_before),
            struct.pack(">d", self.not_after),
            _pack_str(self.user_id),
            b"\x01" if self.is_ca else b"\x00",
            len(self.extensions).to_bytes(4, "big"),
        ]
        for key in sorted(self.extensions):
            parts.append(_pack_str(key))
            parts.append(_pack_str(self.extensions[key]))
        return b"".join(parts)

    def encode(self) -> bytes:
        """Full wire encoding including signature."""
        return _pack_bytes(self.tbs_bytes()) + _pack_bytes(self.signature)

    @classmethod
    def decode(cls, data: bytes) -> "Certificate":
        outer = _Reader(data)
        tbs = outer.read_bytes()
        signature = outer.read_bytes()
        reader = _Reader(tbs)
        magic = reader._take(5)
        if magic != b"SOSC\x01":
            raise CertificateError(f"unsupported certificate format {magic!r}")
        subject = DistinguishedName.decode(reader)
        issuer = DistinguishedName.decode(reader)
        try:
            public_key = RsaPublicKey.from_bytes(reader.read_bytes())
        except ValueError as exc:
            raise CertificateError(f"malformed public key: {exc}") from exc
        serial = int.from_bytes(reader._take(8), "big")
        not_before = reader.read_f64()
        not_after = reader.read_f64()
        user_id = reader.read_str()
        is_ca = reader._take(1) == b"\x01"
        ext_count = reader.read_u32()
        extensions = {}
        for _ in range(ext_count):
            key = reader.read_str()
            extensions[key] = reader.read_str()
        return cls(
            subject=subject,
            issuer=issuer,
            public_key=public_key,
            serial=serial,
            not_before=not_before,
            not_after=not_after,
            user_id=user_id,
            is_ca=is_ca,
            extensions=extensions,
            signature=signature,
        )

    # -- semantics ------------------------------------------------------------
    def fingerprint(self) -> str:
        """Hex SHA-256 over the full encoding; stable identity for caches."""
        return sha256(self.encode()).hex()

    def is_valid_at(self, time: float) -> bool:
        """Pure validity-window check (no signature verification)."""
        return self.not_before <= time <= self.not_after

    def verify_signature(self, issuer_key: RsaPublicKey) -> bool:
        """Check the issuer's signature over the TBS encoding."""
        if not self.signature:
            return False
        return issuer_key.verify(self.tbs_bytes(), self.signature)

    def is_self_signed(self) -> bool:
        return self.subject == self.issuer and self.verify_signature(self.public_key)

    def with_signature(self, signature: bytes) -> "Certificate":
        """Return a signed copy (certificates are immutable)."""
        return Certificate(
            subject=self.subject,
            issuer=self.issuer,
            public_key=self.public_key,
            serial=self.serial,
            not_before=self.not_before,
            not_after=self.not_after,
            user_id=self.user_id,
            is_ca=self.is_ca,
            extensions=dict(self.extensions),
            signature=signature,
        )

    def __str__(self) -> str:
        return (
            f"Certificate(serial={self.serial}, subject={self.subject}, "
            f"user_id={self.user_id!r}, ca={self.is_ca})"
        )
