"""The AlleyOop Social certificate authority.

The CA is the only infrastructure component the system ever requires, and
it is touched exactly once per user, at sign-up (paper Fig. 2a).  It also
implements the paper's impersonation mitigation: the cloud asks the CA to
"compare and validate the unique user-identifier provided in the
certificate with the unique user-identifier affiliated with the logged in
user" — modelled here by the ``expected_user_id`` cross-check argument.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.crypto.drbg import RandomSource, SystemRandomSource
from repro.crypto.rsa import RsaKeyPair, generate_keypair
from repro.pki.certificate import Certificate, CertificateError, DistinguishedName
from repro.pki.csr import CertificateSigningRequest
from repro.pki.revocation import RevocationList

#: Default certificate lifetime: one year, expressed in seconds.
DEFAULT_VALIDITY = 365 * 86400.0


class CertificateAuthority:
    """Issues and revokes user certificates under a self-signed root."""

    def __init__(
        self,
        name: str = "AlleyOop Social Root CA",
        key_bits: int = 1024,
        rng: Optional[RandomSource] = None,
        now: float = 0.0,
        validity: float = DEFAULT_VALIDITY,
        keypair: Optional[RsaKeyPair] = None,
    ) -> None:
        # repro: ignore[rng-unseeded] -- deployment default: every experiment builds the CA with an HmacDrbg; the OS fallback serves real-world use of the library.
        self._rng = rng or SystemRandomSource()
        self._keypair = keypair or generate_keypair(key_bits, rng=self._rng)
        self._serial = 1
        self._reserved: set = set()
        self.validity = float(validity)
        self.revocations = RevocationList()
        self._issued: Dict[int, Certificate] = {}
        self._dn = DistinguishedName(common_name=name, organization="AlleyOop Social CA")
        root = Certificate(
            subject=self._dn,
            issuer=self._dn,
            public_key=self._keypair.public,
            serial=0,
            not_before=now,
            not_after=now + 20 * self.validity,
            user_id="",
            is_ca=True,
        )
        self.root_certificate = root.with_signature(self._keypair.private.sign(root.tbs_bytes()))

    @property
    def issued_count(self) -> int:
        return len(self._issued)

    def reserve_serial(self) -> int:
        """Reserve the next serial number for a certificate issued later.

        Lazy provisioning (:mod:`repro.pki.provisioning`) reserves each
        user's serial at sign-up time and materialises the certificate on
        first use; reserving up front keeps the serial stream — and
        therefore the certificate bytes — identical to an eager run that
        issues in sign-up order.
        """
        serial = self._serial
        self._serial += 1
        self._reserved.add(serial)
        return serial

    def issue(
        self,
        csr: CertificateSigningRequest,
        now: float,
        expected_user_id: Optional[str] = None,
        validity: Optional[float] = None,
        serial: Optional[int] = None,
    ) -> Certificate:
        """Issue a certificate for a verified CSR.

        ``expected_user_id`` is the identifier the cloud has on file for
        the logged-in account; a mismatch with the CSR's claim is rejected
        (paper §IV's defence against credential substitution).
        ``serial`` fulfils a prior :meth:`reserve_serial` reservation;
        by default the next free serial is assigned here.
        """
        if not csr.verify():
            raise CertificateError("CSR self-signature invalid (no proof of key possession)")
        if expected_user_id is not None and csr.user_id != expected_user_id:
            raise CertificateError(
                f"user-identifier mismatch: CSR claims {csr.user_id!r}, "
                f"account is {expected_user_id!r}"
            )
        if not csr.user_id:
            raise CertificateError("CSR carries an empty user-identifier")
        if serial is None:
            serial = self._serial
            self._serial += 1
        elif serial in self._reserved:
            self._reserved.discard(serial)
        else:
            raise CertificateError(f"serial {serial} was never reserved (or already used)")
        cert = Certificate(
            subject=csr.subject,
            issuer=self._dn,
            public_key=csr.public_key,
            serial=serial,
            not_before=now,
            not_after=now + (validity if validity is not None else self.validity),
            user_id=csr.user_id,
            is_ca=False,
        )
        signed = cert.with_signature(self._keypair.private.sign(cert.tbs_bytes()))
        self._issued[serial] = signed
        return signed

    def revoke(self, serial: int, now: float, reason: str = "unspecified") -> None:
        """Revoke an issued certificate (requires infrastructure, §IV)."""
        if serial not in self._issued:
            raise CertificateError(f"serial {serial} was not issued by this CA")
        self.revocations.revoke(serial, now, reason)

    def get_issued(self, serial: int) -> Optional[Certificate]:
        return self._issued.get(serial)
