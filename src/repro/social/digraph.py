"""A small directed-graph implementation.

``networkx`` is available in this environment, but the social graph is a
core substrate of the reproduction, so it is implemented from scratch
(adjacency sets + BFS) and *cross-validated* against networkx in the test
suite.  Nodes are arbitrary hashables; in AlleyOop they are user ids.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

Node = Hashable


class SocialDigraph:
    """Directed graph with O(1) edge queries and BFS utilities.

    An edge ``(i, j)`` means *i follows j* (paper §VI-A).
    """

    def __init__(self) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}

    # -- construction ---------------------------------------------------------
    def add_node(self, node: Node) -> None:
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def add_edge(self, follower: Node, followee: Node) -> None:
        """Add *follower follows followee*; self-loops are rejected."""
        if follower == followee:
            raise ValueError(f"self-follow not allowed: {follower!r}")
        self.add_node(follower)
        self.add_node(followee)
        self._succ[follower].add(followee)
        self._pred[followee].add(follower)

    def remove_edge(self, follower: Node, followee: Node) -> None:
        self._succ.get(follower, set()).discard(followee)
        self._pred.get(followee, set()).discard(follower)

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[Node, Node]], nodes: Iterable[Node] = ()) -> "SocialDigraph":
        graph = cls()
        for node in nodes:
            graph.add_node(node)
        for follower, followee in edges:
            graph.add_edge(follower, followee)
        return graph

    # -- queries ----------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        return sorted(self._succ, key=repr)

    @property
    def node_count(self) -> int:
        return len(self._succ)

    @property
    def edge_count(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        for follower in self._succ:
            for followee in self._succ[follower]:
                yield (follower, followee)

    def has_edge(self, follower: Node, followee: Node) -> bool:
        return followee in self._succ.get(follower, ())

    def following(self, node: Node) -> Set[Node]:
        """Users that ``node`` follows (out-neighbours)."""
        return set(self._succ.get(node, ()))

    def followers(self, node: Node) -> Set[Node]:
        """Users following ``node`` (in-neighbours)."""
        return set(self._pred.get(node, ()))

    def out_degree(self, node: Node) -> int:
        return len(self._succ.get(node, ()))

    def in_degree(self, node: Node) -> int:
        return len(self._pred.get(node, ()))

    # -- undirected projection -----------------------------------------------------
    def undirected_adjacency(self) -> Dict[Node, Set[Node]]:
        """The undirected projection: i~j iff i follows j or j follows i.

        The paper uses this projection for compactness and transitivity
        ("if a two-way relationship did not already exist, it will exist
        in the undirectional graph", §VI-A).
        """
        adj: Dict[Node, Set[Node]] = {node: set() for node in self._succ}
        for follower, followees in self._succ.items():
            for followee in followees:
                adj[follower].add(followee)
                adj[followee].add(follower)
        return adj

    def undirected_edge_count(self) -> int:
        return sum(len(n) for n in self.undirected_adjacency().values()) // 2

    # -- traversal ---------------------------------------------------------------------
    @staticmethod
    def bfs_distances(adj: Dict[Node, Set[Node]], source: Node) -> Dict[Node, int]:
        """Unweighted shortest-path distances from ``source`` over ``adj``."""
        distances = {source: 0}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbour in adj[current]:
                if neighbour not in distances:
                    distances[neighbour] = distances[current] + 1
                    queue.append(neighbour)
        return distances

    def is_weakly_connected(self) -> bool:
        if not self._succ:
            return True
        adj = self.undirected_adjacency()
        start = next(iter(adj))
        return len(self.bfs_distances(adj, start)) == len(adj)

    def copy(self) -> "SocialDigraph":
        clone = SocialDigraph()
        for node in self._succ:
            clone.add_node(node)
        for follower, followee in self.edges():
            clone.add_edge(follower, followee)
        return clone

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SocialDigraph n={self.node_count} m={self.edge_count}>"
