"""Directed social graphs and the Fig. 4a reconstruction.

The paper analyses the deployment's follow graph (§VI-A) with standard
social-network measures.  We implement the digraph and every reported
measure from scratch (validated against ``networkx`` in the test suite),
plus generators for scaled-up what-if studies, and the exact
reconstruction of the published Fig. 4a graph in
:mod:`repro.social.figure4a`.
"""

from repro.social.digraph import SocialDigraph
from repro.social.metrics import (
    average_shortest_path_length,
    center,
    density_directed,
    density_undirected,
    diameter,
    eccentricities,
    radius,
    reciprocity,
    transitivity_undirected,
)
from repro.social.generators import (
    SOCIAL_GRAPH_KINDS,
    degree_bounded_digraph,
    hub_and_cluster_digraph,
    make_social_graph,
    powerlaw_cluster_digraph,
    random_digraph,
    resolve_social_graph_kind,
)
from repro.social.figure4a import (
    FIGURE_4A_EDGES,
    INITIAL_SUBSCRIPTIONS,
    LATE_FOLLOWS,
    figure_4a_graph,
)

__all__ = [
    "SocialDigraph",
    "average_shortest_path_length",
    "center",
    "density_directed",
    "density_undirected",
    "diameter",
    "eccentricities",
    "radius",
    "reciprocity",
    "transitivity_undirected",
    "SOCIAL_GRAPH_KINDS",
    "degree_bounded_digraph",
    "hub_and_cluster_digraph",
    "make_social_graph",
    "powerlaw_cluster_digraph",
    "random_digraph",
    "resolve_social_graph_kind",
    "FIGURE_4A_EDGES",
    "INITIAL_SUBSCRIPTIONS",
    "LATE_FOLLOWS",
    "figure_4a_graph",
]
