"""Reconstruction of the paper's Fig. 4a social relationship digraph.

The paper publishes the graph's *statistics*, not its adjacency list.  The
reconstruction below is the result of a constraint search over 10-node
digraphs; it satisfies **every** quantity §VI-A reports:

==========================================  =================  ============
Statistic (paper convention)                 Paper value        This graph
==========================================  =================  ============
Nodes                                        10                 10
Directed density m/(n(n-1))                  0.64               58/90 = 0.644
Mean undirected shortest path (45 pairs)     1.3                58/45 = 1.289
Diameter (undirected)                        2                  2
Radius / center nodes                        1 / {6, 7}         1 / {6, 7}
Transitivity (undirected)                    0.80               0.804
Node 1 follows node 3, not reciprocated      yes                yes
==========================================  =================  ============

The paper separately reports **46 subscriptions** made by the ten active
users — fewer than the digraph's 58 edges.  The two numbers cannot both be
edge counts of one graph (46/90 = 0.51, not 0.64).  We reconcile them the
way AlleyOop Social actually works: follow/unfollow are *actions* that
happen over time (§V).  46 subscriptions exist at the start of the
measurement window (these are the Fig. 4d evaluated subscriptions) and the
remaining 12 follow actions occur during the study, completing Fig. 4a's
58-edge end-of-study graph.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.social.digraph import SocialDigraph

#: Node labels as printed in Fig. 4a.
FIGURE_4A_NODES: Tuple[int, ...] = tuple(range(1, 11))

#: Undirected relationship pairs (32).  Nodes 6 and 7 are the graph's
#: centers and are adjacent to everyone (radius 1).
_UNDIRECTED_PAIRS: List[Tuple[int, int]] = [
    # hub adjacencies (17)
    (1, 6), (2, 6), (3, 6), (4, 6), (5, 6), (6, 8), (6, 9), (6, 10),
    (1, 7), (2, 7), (3, 7), (4, 7), (5, 7), (7, 8), (7, 9), (7, 10),
    (6, 7),
    # peripheral adjacencies (15, from the constraint search)
    (1, 3), (1, 4), (1, 5), (1, 8),
    (2, 4), (2, 9),
    (3, 4), (3, 5), (3, 8), (3, 9),
    (4, 5), (4, 8), (4, 9),
    (5, 8),
    (8, 9),
]

#: Pairs that are one-way follows (6), giving 26*2 + 6 = 58 directed edges.
#: (1, 3) is the example the paper calls out: "node 1 and node 3".
_ONE_WAY: List[Tuple[int, int]] = [
    (1, 3),    # 1 follows 3; 3 does not follow back (paper's example)
    (9, 2),
    (5, 8),
    (4, 9),
    (10, 6),
    (10, 7),
]

_ONE_WAY_PAIRS = {tuple(sorted(edge)) for edge in _ONE_WAY}


def _directed_edges() -> List[Tuple[int, int]]:
    edges: List[Tuple[int, int]] = []
    for a, b in _UNDIRECTED_PAIRS:
        if tuple(sorted((a, b))) in _ONE_WAY_PAIRS:
            continue
        edges.append((a, b))
        edges.append((b, a))
    edges.extend(_ONE_WAY)
    return edges


#: All 58 directed follow edges of the end-of-study graph.
FIGURE_4A_EDGES: Tuple[Tuple[int, int], ...] = tuple(sorted(_directed_edges()))

#: The 12 follow actions performed *during* the study (the 6 unreciprocated
#: follows plus 3 relationships formed mid-study), excluded from the
#: Fig. 4d per-subscription delivery statistics.
LATE_FOLLOWS: Tuple[Tuple[int, int], ...] = tuple(
    sorted(
        list(_ONE_WAY)
        + [(2, 4), (4, 2), (8, 9), (9, 8), (3, 9), (9, 3)]
    )
)

#: The 46 subscriptions in place when the measurement window opens — the
#: paper's "total amount of subscriptions made by the ten active users".
INITIAL_SUBSCRIPTIONS: Tuple[Tuple[int, int], ...] = tuple(
    sorted(set(FIGURE_4A_EDGES) - set(LATE_FOLLOWS))
)


def figure_4a_graph(include_late_follows: bool = True) -> SocialDigraph:
    """Build the reconstructed Fig. 4a digraph.

    ``include_late_follows=False`` returns the day-0 subscription graph
    (46 edges) instead of the end-of-study graph (58 edges).
    """
    edges = FIGURE_4A_EDGES if include_late_follows else INITIAL_SUBSCRIPTIONS
    return SocialDigraph.from_edges(edges, nodes=FIGURE_4A_NODES)
