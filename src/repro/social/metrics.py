"""Social-network measures used in paper §VI-A.

Each function implements exactly the quantity the paper reports for
Fig. 4a, with the same conventions:

* **density** — directed: ``m / (n (n-1))``,
* **compactness** — average shortest path length over unordered node
  pairs of the *undirected projection*: ``sum_{i>j} l(i,j) / (n(n-1)/2)``,
* **diameter / eccentricity / radius / center** — on the undirected
  projection (the paper's center nodes 6 and 7 have radius 1),
* **transitivity** — ``3 * triangles / connected triads`` on the
  undirected projection (the paper's T(G) = 0.80).
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.social.digraph import SocialDigraph

Node = Hashable


def density_directed(graph: SocialDigraph) -> float:
    """Directed density m / (n(n-1)).  Paper value for Fig. 4a: 0.64."""
    n = graph.node_count
    if n < 2:
        return 0.0
    return graph.edge_count / (n * (n - 1))


def density_undirected(graph: SocialDigraph) -> float:
    """Density of the undirected projection: e / (n(n-1)/2)."""
    n = graph.node_count
    if n < 2:
        return 0.0
    return graph.undirected_edge_count() / (n * (n - 1) / 2.0)


def _all_pairs_distances(graph: SocialDigraph) -> Dict[Node, Dict[Node, int]]:
    adj = graph.undirected_adjacency()
    return {node: SocialDigraph.bfs_distances(adj, node) for node in adj}


def average_shortest_path_length(graph: SocialDigraph) -> float:
    """Mean undirected shortest-path length over unordered pairs.

    Paper: sum l(i,j) / (n(n-1)/2) = 1.3 for Fig. 4a.  Raises if the
    graph is disconnected (a pair would have infinite distance).
    """
    n = graph.node_count
    if n < 2:
        return 0.0
    distances = _all_pairs_distances(graph)
    total = 0
    count = 0
    nodes = graph.nodes
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            if b not in distances[a]:
                raise ValueError(f"graph disconnected: no path {a!r} ~ {b!r}")
            total += distances[a][b]
            count += 1
    return total / count


def eccentricities(graph: SocialDigraph) -> Dict[Node, int]:
    """Undirected eccentricity of each node: max distance to any other."""
    distances = _all_pairs_distances(graph)
    n = graph.node_count
    out: Dict[Node, int] = {}
    for node, dist in distances.items():
        if len(dist) != n:
            raise ValueError(f"graph disconnected at {node!r}")
        out[node] = max(dist.values()) if n > 1 else 0
    return out


def diameter(graph: SocialDigraph) -> int:
    """Maximum eccentricity.  Paper value: d(G) = 2."""
    ecc = eccentricities(graph)
    return max(ecc.values()) if ecc else 0


def radius(graph: SocialDigraph) -> int:
    """Minimum eccentricity.  Paper value: 1."""
    ecc = eccentricities(graph)
    return min(ecc.values()) if ecc else 0


def center(graph: SocialDigraph) -> List[Node]:
    """Nodes whose eccentricity equals the radius.  Paper: nodes 6 and 7."""
    ecc = eccentricities(graph)
    if not ecc:
        return []
    r = min(ecc.values())
    return sorted((node for node, e in ecc.items() if e == r), key=repr)


def transitivity_undirected(graph: SocialDigraph) -> float:
    """3 * triangles / connected triads on the undirected projection.

    Paper: T(G) = 0.80 — "the extent that a friend k of a friend j is
    also a friend of i".
    """
    adj = graph.undirected_adjacency()
    triangles = 0
    triads = 0
    for node, neighbours in adj.items():
        d = len(neighbours)
        triads += d * (d - 1) // 2
        ordered = sorted(neighbours, key=repr)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                if b in adj[a]:
                    triangles += 1
    # Each triangle is counted once per corner = 3 times total.
    if triads == 0:
        return 0.0
    return triangles / triads


def reciprocity(graph: SocialDigraph) -> float:
    """Fraction of directed edges whose reverse edge also exists."""
    m = graph.edge_count
    if m == 0:
        return 0.0
    mutual = sum(1 for i, j in graph.edges() if graph.has_edge(j, i))
    return mutual / m


def degree_histogram(graph: SocialDigraph, direction: str = "out") -> Dict[int, int]:
    """Map degree -> node count, for sweep sanity checks.

    ``direction`` is ``"out"`` (follows made), ``"in"`` (followers) or
    ``"total"`` (undirected-projection degree).
    """
    if direction == "out":
        degrees = (graph.out_degree(n) for n in graph.nodes)
    elif direction == "in":
        degrees = (graph.in_degree(n) for n in graph.nodes)
    elif direction == "total":
        adj = graph.undirected_adjacency()
        degrees = (len(adj[n]) for n in graph.nodes)
    else:
        raise ValueError(f"direction must be out/in/total, got {direction!r}")
    histogram: Dict[int, int] = {}
    for degree in degrees:
        histogram[degree] = histogram.get(degree, 0) + 1
    return dict(sorted(histogram.items()))


def degree_summary(graph: SocialDigraph) -> Dict[str, float]:
    """Min/mean/max of in- and out-degrees (used in reports)."""
    nodes = graph.nodes
    if not nodes:
        return {}
    in_degrees = [graph.in_degree(n) for n in nodes]
    out_degrees = [graph.out_degree(n) for n in nodes]
    return {
        "in_min": min(in_degrees),
        "in_mean": sum(in_degrees) / len(in_degrees),
        "in_max": max(in_degrees),
        "out_min": min(out_degrees),
        "out_mean": sum(out_degrees) / len(out_degrees),
        "out_max": max(out_degrees),
    }
