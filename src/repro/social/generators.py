"""Social-graph generators for scaled experiments.

The paper closes by calling for "further investigations at higher
densities" (§VI-B).  These generators produce digraphs with the Fig. 4a
*shape* — a small set of highly connected centers, peripheral clusters,
partial reciprocity — at arbitrary node counts, so the benchmark harness
can sweep population size and density.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.social.digraph import SocialDigraph

#: Generator families selectable via ``ScenarioConfig.social_graph``.
#: ``"auto"`` preserves the historical dispatch: the exact Fig. 4a
#: reconstruction at N=10, ``hub_and_cluster`` otherwise.
SOCIAL_GRAPH_KINDS = (
    "auto",
    "figure4a",
    "hub_and_cluster",
    "degree_bounded",
    "powerlaw_cluster",
)


def random_digraph(
    nodes: Sequence,
    density: float,
    rng: random.Random,
    reciprocity: float = 0.7,
) -> SocialDigraph:
    """Erdos-Renyi-style digraph with a target directed density.

    ``reciprocity`` is the probability that a drawn follow is immediately
    reciprocated (human follow graphs are strongly but not fully
    reciprocal; Fig. 4a's reciprocity is 52/58 = 0.90).
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    graph = SocialDigraph()
    node_list = list(nodes)
    for node in node_list:
        graph.add_node(node)
    n = len(node_list)
    target_edges = round(density * n * (n - 1))
    pairs = [(a, b) for i, a in enumerate(node_list) for b in node_list[i + 1 :]]
    rng.shuffle(pairs)
    for a, b in pairs:
        if graph.edge_count >= target_edges:
            break
        first, second = (a, b) if rng.random() < 0.5 else (b, a)
        graph.add_edge(first, second)
        if graph.edge_count < target_edges and rng.random() < reciprocity:
            graph.add_edge(second, first)
    return graph


def hub_and_cluster_digraph(
    nodes: Sequence,
    rng: random.Random,
    hub_count: int = 2,
    peripheral_density: float = 0.5,
    reciprocity: float = 0.85,
) -> SocialDigraph:
    """Fig. 4a-shaped graph: ``hub_count`` centers adjacent to everyone,
    peripheral nodes wired at ``peripheral_density`` among themselves."""
    node_list = list(nodes)
    if hub_count >= len(node_list):
        raise ValueError("hub_count must be smaller than the population")
    graph = SocialDigraph()
    for node in node_list:
        graph.add_node(node)
    hubs = node_list[:hub_count]
    periphery = node_list[hub_count:]
    for hub in hubs:
        for other in node_list:
            if other == hub:
                continue
            graph.add_edge(hub, other)
            graph.add_edge(other, hub)
    for i, a in enumerate(periphery):
        for b in periphery[i + 1 :]:
            if rng.random() < peripheral_density:
                first, second = (a, b) if rng.random() < 0.5 else (b, a)
                graph.add_edge(first, second)
                if rng.random() < reciprocity:
                    graph.add_edge(second, first)
    return graph


def degree_bounded_digraph(
    nodes: Sequence,
    rng: random.Random,
    out_degree: int = 12,
    reciprocity: float = 0.7,
) -> SocialDigraph:
    """Sparse follow graph with a *hard* per-node out-degree bound.

    ``hub_and_cluster_digraph`` wires the periphery at a fixed pairwise
    density, so its edge count — and the day-0 bootstrap cost — grows
    O(N²).  Real follow graphs do not: people follow a roughly constant
    number of others no matter how large the network is.  Here every
    node follows its ring successor (a deterministic backbone that keeps
    the graph weakly connected at any N) plus uniformly drawn extras up
    to ``out_degree`` total, and a follow is reciprocated only while the
    target has out-degree budget left — so ``out_degree`` is a hard cap,
    not an expectation, and total edges are ≤ N * out_degree.
    """
    if out_degree < 1:
        raise ValueError(f"out_degree must be at least 1, got {out_degree}")
    if not 0.0 <= reciprocity <= 1.0:
        raise ValueError(f"reciprocity must be in [0, 1], got {reciprocity}")
    node_list = list(nodes)
    n = len(node_list)
    if n < 2:
        raise ValueError("need at least two nodes")
    graph = SocialDigraph()
    for node in node_list:
        graph.add_node(node)
    # Backbone ring: weak connectivity at any N without O(N²) wiring.
    for i, node in enumerate(node_list):
        graph.add_edge(node, node_list[(i + 1) % n])
    cap = min(out_degree, n - 1)
    for i, a in enumerate(node_list):
        attempts = 0
        while graph.out_degree(a) < cap and attempts < 4 * out_degree:
            attempts += 1
            b = node_list[rng.randrange(n)]
            if b == a or graph.has_edge(a, b):
                continue
            graph.add_edge(a, b)
            if graph.out_degree(b) < cap and rng.random() < reciprocity:
                graph.add_edge(b, a)
    return graph


def powerlaw_cluster_digraph(
    nodes: Sequence,
    rng: random.Random,
    cluster_size: int = 8,
    intra_density: float = 0.6,
    hub_fraction: float = 0.01,
    min_hubs: int = 2,
    hub_follows: int = 2,
    hub_skew: float = 1.2,
    reciprocity: float = 0.85,
) -> SocialDigraph:
    """Fig. 4a's *shape* at a density that survives large N.

    Keeps the two ingredients the paper's graph exhibits — a few highly
    connected centers plus clustered, partially reciprocal peripheral
    friendships — but bounds the expected peripheral degree by a
    constant instead of wiring the whole periphery at a fixed density:

    * hubs (``max(min_hubs, hub_fraction * N)``, mutually adjacent, as
      the Fig. 4a centers 6/7 are) attract follows with Zipf-weighted
      popularity (``1 / rank^hub_skew``), so hub in-degree follows a
      power law in hub rank;
    * the periphery is partitioned into friend clusters of
      ``cluster_size``, wired internally at ``intra_density`` with
      ``reciprocity``-probable back-edges — expected peripheral degree
      ≈ ``intra_density * (cluster_size - 1) * (1 + reciprocity) / 2 +
      hub_follows``, independent of N;
    * every peripheral node follows ``hub_follows`` distinct hubs, which
      (with the mutually wired hub core) keeps the graph weakly
      connected at any N.
    """
    node_list = list(nodes)
    n = len(node_list)
    hub_count = max(min_hubs, round(hub_fraction * n))
    if hub_count >= n:
        raise ValueError("hub count must be smaller than the population")
    if cluster_size < 2:
        raise ValueError(f"cluster_size must be at least 2, got {cluster_size}")
    graph = SocialDigraph()
    for node in node_list:
        graph.add_node(node)
    hubs = node_list[:hub_count]
    periphery = node_list[hub_count:]
    for i, hub in enumerate(hubs):
        for other in hubs[i + 1 :]:
            graph.add_edge(hub, other)
            graph.add_edge(other, hub)
    # Peripheral friend clusters (consecutive slices keep it O(N)).
    for start in range(0, len(periphery), cluster_size):
        cluster = periphery[start : start + cluster_size]
        for i, a in enumerate(cluster):
            for b in cluster[i + 1 :]:
                if rng.random() < intra_density:
                    first, second = (a, b) if rng.random() < 0.5 else (b, a)
                    graph.add_edge(first, second)
                    if rng.random() < reciprocity:
                        graph.add_edge(second, first)
    # Zipf-weighted hub attachment.
    follows_per_node = min(hub_follows, hub_count)
    for a in periphery:
        available: List[int] = list(range(hub_count))
        for _ in range(follows_per_node):
            weights = [1.0 / (rank + 1) ** hub_skew for rank in available]
            pick = rng.random() * sum(weights)
            acc = 0.0
            chosen = available[-1]
            for rank, weight in zip(available, weights):
                acc += weight
                if pick <= acc:
                    chosen = rank
                    break
            available.remove(chosen)
            hub = hubs[chosen]
            graph.add_edge(a, hub)
            if rng.random() < reciprocity:
                graph.add_edge(hub, a)
    return graph


def resolve_social_graph_kind(kind: str, num_users: int) -> str:
    """Resolve ``"auto"`` to the concrete generator for this population.

    The single validation point for the knob: unknown kinds and the
    figure4a/num_users constraint are rejected here, so config
    construction (``ScenarioConfig``) and graph building
    (:func:`make_social_graph`) cannot drift apart.
    """
    if kind not in SOCIAL_GRAPH_KINDS:
        raise ValueError(
            f"social_graph must be one of {SOCIAL_GRAPH_KINDS}, got {kind!r}"
        )
    if kind == "auto":
        return "figure4a" if num_users == 10 else "hub_and_cluster"
    if kind == "figure4a" and num_users != 10:
        raise ValueError(
            f"social_graph 'figure4a' is the exact 10-node reconstruction; "
            f"it cannot be used with num_users={num_users}"
        )
    return kind


def make_social_graph(kind: str, num_users: int, rng: random.Random) -> SocialDigraph:
    """Factory behind ``ScenarioConfig.social_graph``.

    Nodes are the paper-style integer labels ``1..num_users``; pass the
    scenario's dedicated ``"social"`` random stream for reproducibility.
    """
    resolved = resolve_social_graph_kind(kind, num_users)
    if resolved == "figure4a":
        from repro.social.figure4a import figure_4a_graph

        return figure_4a_graph()
    node_range = range(1, num_users + 1)
    if resolved == "hub_and_cluster":
        return hub_and_cluster_digraph(node_range, rng)
    if resolved == "degree_bounded":
        return degree_bounded_digraph(node_range, rng)
    return powerlaw_cluster_digraph(node_range, rng)
