"""Social-graph generators for scaled experiments.

The paper closes by calling for "further investigations at higher
densities" (§VI-B).  These generators produce digraphs with the Fig. 4a
*shape* — a small set of highly connected centers, peripheral clusters,
partial reciprocity — at arbitrary node counts, so the benchmark harness
can sweep population size and density.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.social.digraph import SocialDigraph


def random_digraph(
    nodes: Sequence,
    density: float,
    rng: random.Random,
    reciprocity: float = 0.7,
) -> SocialDigraph:
    """Erdos-Renyi-style digraph with a target directed density.

    ``reciprocity`` is the probability that a drawn follow is immediately
    reciprocated (human follow graphs are strongly but not fully
    reciprocal; Fig. 4a's reciprocity is 52/58 = 0.90).
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    graph = SocialDigraph()
    node_list = list(nodes)
    for node in node_list:
        graph.add_node(node)
    n = len(node_list)
    target_edges = round(density * n * (n - 1))
    pairs = [(a, b) for i, a in enumerate(node_list) for b in node_list[i + 1 :]]
    rng.shuffle(pairs)
    for a, b in pairs:
        if graph.edge_count >= target_edges:
            break
        first, second = (a, b) if rng.random() < 0.5 else (b, a)
        graph.add_edge(first, second)
        if graph.edge_count < target_edges and rng.random() < reciprocity:
            graph.add_edge(second, first)
    return graph


def hub_and_cluster_digraph(
    nodes: Sequence,
    rng: random.Random,
    hub_count: int = 2,
    peripheral_density: float = 0.5,
    reciprocity: float = 0.85,
) -> SocialDigraph:
    """Fig. 4a-shaped graph: ``hub_count`` centers adjacent to everyone,
    peripheral nodes wired at ``peripheral_density`` among themselves."""
    node_list = list(nodes)
    if hub_count >= len(node_list):
        raise ValueError("hub_count must be smaller than the population")
    graph = SocialDigraph()
    for node in node_list:
        graph.add_node(node)
    hubs = node_list[:hub_count]
    periphery = node_list[hub_count:]
    for hub in hubs:
        for other in node_list:
            if other == hub:
                continue
            graph.add_edge(hub, other)
            graph.add_edge(other, hub)
    for i, a in enumerate(periphery):
        for b in periphery[i + 1 :]:
            if rng.random() < peripheral_density:
                first, second = (a, b) if rng.random() < 0.5 else (b, a)
                graph.add_edge(first, second)
                if rng.random() < reciprocity:
                    graph.add_edge(second, first)
    return graph
