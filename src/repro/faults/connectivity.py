"""Cloud connectivity faults.

Two cooperating pieces model the paper's unreliable Internet (§V: actions
sync "when the Internet becomes available"):

* :class:`ConnectivityModel` drives the cloud's ``online`` flag through
  alternating exponential up/down windows scheduled on the simulator —
  the macroscopic outages that make the DTN path matter.
* :class:`CloudFaultGate` sits inside ``CloudService.sync_batch`` and
  injects the microscopic failures of a real backend: transient timeouts,
  rate-limit rejections, and partial (prefix-only) durable acceptance.

Both draw exclusively from DRBG substreams owned by the injector, and
both emit ``fault/*`` trace events so degradation is measurable from the
trace alone.
"""

from __future__ import annotations

from typing import List, Optional

from repro.alleyoop.cloud import CloudError, CloudService
from repro.crypto.drbg import RandomSource
from repro.faults.plan import FaultPlan
from repro.faults.randomness import expovariate, uniform
from repro.sim.engine import Simulator
from repro.storage.actionlog import Action


class ConnectivityModel:
    """Alternating online/offline windows for one :class:`CloudService`.

    The model owns ``cloud.online`` for the whole run: it forces the
    cloud up at start and schedules the first outage; every transition
    emits a ``fault/cloud_down`` / ``fault/cloud_up`` trace event.
    """

    def __init__(
        self,
        sim: Simulator,
        cloud: CloudService,
        plan: FaultPlan,
        drbg: RandomSource,
        owner: Optional[object] = None,
    ) -> None:
        if not plan.has_cloud_outages:
            raise ValueError("plan has no connectivity windows configured")
        self.sim = sim
        self.cloud = cloud
        self.plan = plan
        self._drbg = drbg
        self._owner = owner if owner is not None else self
        self.transitions = 0

    def start(self) -> None:
        self.cloud.online = True
        self._schedule(self.plan.cloud_mean_up_s, self._go_down)

    def _schedule(self, mean: float, callback) -> None:
        self.sim.schedule_in(
            expovariate(self._drbg, mean),
            callback,
            owner=self._owner,
            name="cloud-window",
        )

    def _go_down(self) -> None:
        self.cloud.online = False
        self.transitions += 1
        self.sim.trace.emit(self.sim.now, "fault", "cloud_down")
        self._schedule(self.plan.cloud_mean_down_s, self._go_up)

    def _go_up(self) -> None:
        self.cloud.online = True
        self.transitions += 1
        self.sim.trace.emit(self.sim.now, "fault", "cloud_up")
        self._schedule(self.plan.cloud_mean_up_s, self._go_down)


class CloudFaultGate:
    """Per-call sync faults, installed as ``CloudService.sync_faults``.

    ``admit`` runs after the online check and before any state changes;
    it may raise :class:`CloudError` (transient timeout, rate limit) or
    return a truncated batch (prefix-only durable acceptance).  The sync
    queue's at-least-once replay contract absorbs all three.
    """

    def __init__(self, sim: Simulator, plan: FaultPlan, drbg: RandomSource) -> None:
        self.sim = sim
        self.plan = plan
        self._drbg = drbg
        self._window_start = float("-inf")
        self._calls_in_window = 0
        self.stats = {"timeouts": 0, "rate_limited": 0, "partial": 0}

    def admit(self, user_id: str, batch: List[Action]) -> List[Action]:
        plan = self.plan
        now = self.sim.now
        if plan.cloud_rate_limit > 0:
            if now - self._window_start >= plan.cloud_rate_window_s:
                self._window_start = now
                self._calls_in_window = 0
            self._calls_in_window += 1
            if self._calls_in_window > plan.cloud_rate_limit:
                self.stats["rate_limited"] += 1
                self.sim.trace.emit(now, "fault", "cloud_rate_limited", user=user_id)
                raise CloudError("rate limited")
        if plan.cloud_timeout_prob > 0 and uniform(self._drbg) < plan.cloud_timeout_prob:
            self.stats["timeouts"] += 1
            self.sim.trace.emit(now, "fault", "cloud_timeout", user=user_id)
            raise CloudError("transient timeout")
        if (
            plan.cloud_partial_prob > 0
            and batch
            and uniform(self._drbg) < plan.cloud_partial_prob
        ):
            keep = self._drbg.read_int_below(len(batch))
            self.stats["partial"] += 1
            self.sim.trace.emit(
                now, "fault", "cloud_partial", user=user_id,
                offered=len(batch), kept=keep,
            )
            return batch[:keep]
        return batch
