"""Deterministic fault injection (ROADMAP item 4).

Public surface:

* :class:`~repro.faults.plan.FaultPlan` — declarative fault description
  (presets, CLI spec parsing, sampled plans for chaos tests),
* :class:`~repro.faults.injector.FaultInjector` — schedules every enabled
  fault process from DRBG substreams of one fault seed,
* :class:`~repro.faults.retry.RetryPolicy` — the exponential-backoff
  schedule the resilient sync path runs under,
* :class:`~repro.faults.connectivity.ConnectivityModel` /
  :class:`~repro.faults.connectivity.CloudFaultGate` — the cloud-facing
  fault processes (usable standalone in tests).
"""

from repro.faults.connectivity import CloudFaultGate, ConnectivityModel
from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_PRESET_NAMES, PRESETS, FaultPlan
from repro.faults.retry import RetryPolicy

__all__ = [
    "CloudFaultGate",
    "ConnectivityModel",
    "FaultInjector",
    "FaultPlan",
    "FAULT_PRESET_NAMES",
    "PRESETS",
    "RetryPolicy",
]
