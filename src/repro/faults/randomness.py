"""Distribution helpers over the deterministic DRBG byte source.

The fault subsystem draws every random quantity from
:class:`~repro.crypto.drbg.HmacDrbg` substreams rather than
``random.Random`` so that a fault seed fully determines the whole fault
schedule, independent of anything else the simulation draws.
"""

from __future__ import annotations

import math

from repro.crypto.drbg import RandomSource

_U64 = float(1 << 64)


def uniform(drbg: RandomSource) -> float:
    """Uniform float in [0, 1)."""
    return int.from_bytes(drbg.read(8), "big") / _U64


def uniform_in(drbg: RandomSource, lo: float, hi: float) -> float:
    """Uniform float in [lo, hi)."""
    if hi < lo:
        raise ValueError(f"empty interval [{lo}, {hi})")
    return lo + (hi - lo) * uniform(drbg)


def expovariate(drbg: RandomSource, mean: float) -> float:
    """Exponential holding time with the given mean (seconds)."""
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean!r}")
    # 1 - u is in (0, 1], so the log argument never hits zero.
    return -mean * math.log(1.0 - uniform(drbg))


def choice_index(drbg: RandomSource, n: int) -> int:
    """Uniform index in [0, n)."""
    if n <= 0:
        raise ValueError(f"cannot choose from {n} items")
    return drbg.read_int_below(n)
