"""Declarative fault plans.

A :class:`FaultPlan` is a frozen description of every fault process a run
may inject: cloud connectivity windows, transient sync rejections, device
crash/reboot churn and link-layer frame faults.  The plan is *pure data*
— all randomness lives in the :class:`~repro.faults.injector.FaultInjector`,
which derives independent DRBG substreams from one fault seed, so two runs
of the same plan with the same seed produce byte-identical traces.

Plans come from three places:

* :meth:`FaultPlan.none` — the default; nothing is injected and the whole
  subsystem stays out of the run (oracle discipline: a ``faults="none"``
  run is byte-identical to a build of the repo without this subsystem),
* :meth:`FaultPlan.parse` — the CLI / :class:`ScenarioConfig` spec string:
  ``"none"``, a named preset (``"mild"``, ``"harsh"``), or a
  comma-separated ``key=value`` list overriding preset/default fields
  (``"mild,frame_drop_prob=0.2"``),
* :meth:`FaultPlan.sample` — a deterministic random plan for the chaos
  property tests (one integer seed -> one plan).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Tuple

from repro.faults.retry import RetryPolicy


@dataclass(frozen=True)
class FaultPlan:
    """Every knob of one fault-injection run.

    Rates are expressed in natural units (events per day / per hour,
    probabilities per call or per frame); a value of zero disables the
    corresponding process entirely — the injector then never draws from
    that substream.
    """

    # -- cloud connectivity --------------------------------------------------------
    #: Mean online-window duration in seconds (exponential).  0 disables
    #: connectivity windowing: the cloud's ``online`` flag is left alone.
    cloud_mean_up_s: float = 0.0
    #: Mean offline-window duration in seconds (exponential).
    cloud_mean_down_s: float = 0.0
    #: Probability that a ``sync_batch`` call fails with a transient
    #: timeout even while the cloud is online.
    cloud_timeout_prob: float = 0.0
    #: Max ``sync_batch`` calls accepted per rate window (0 = unlimited).
    cloud_rate_limit: int = 0
    #: Rate-limit accounting window in seconds.
    cloud_rate_window_s: float = 60.0
    #: Probability that a batch is only partially durably accepted (a
    #: random prefix), exercising the at-least-once replay contract.
    cloud_partial_prob: float = 0.0

    # -- device churn ---------------------------------------------------------------
    #: Expected crashes per device per simulated day (Poisson).
    crash_rate_per_day: float = 0.0
    #: Reboot delay drawn uniformly from this window (seconds).
    reboot_delay_s: Tuple[float, float] = (30.0, 300.0)

    # -- link faults ----------------------------------------------------------------
    #: Probability a completed transfer's frame is silently dropped.
    frame_drop_prob: float = 0.0
    #: Probability a delivered frame has one byte corrupted (must surface
    #: as a decode/security diagnostic at the receiver, never a crash).
    frame_corrupt_prob: float = 0.0
    #: Expected forced link drops per hour across the whole population
    #: (the dropped pair re-forms on the next medium tick if still in
    #: range — a flap).
    link_flap_rate_per_hour: float = 0.0

    # -- resilience policy (what the apps do about all of the above) ---------------
    #: Exponential-backoff retry schedule for cloud sync; attached to
    #: every app whenever the plan is active.
    retry_base_s: float = 30.0
    retry_cap_s: float = 900.0
    retry_jitter: float = 0.25

    def __post_init__(self) -> None:
        for name in ("cloud_timeout_prob", "cloud_partial_prob",
                     "frame_drop_prob", "frame_corrupt_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.frame_drop_prob + self.frame_corrupt_prob > 1.0:
            raise ValueError("frame_drop_prob + frame_corrupt_prob must not exceed 1")
        for name in ("cloud_mean_up_s", "cloud_mean_down_s", "cloud_rate_window_s",
                     "crash_rate_per_day", "link_flap_rate_per_hour",
                     "retry_base_s", "retry_cap_s", "retry_jitter"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.cloud_rate_limit < 0:
            raise ValueError("cloud_rate_limit must be non-negative")
        if (self.cloud_mean_up_s > 0) != (self.cloud_mean_down_s > 0):
            raise ValueError(
                "cloud_mean_up_s and cloud_mean_down_s must both be set "
                "(or both zero to disable connectivity windows)"
            )
        lo, hi = self.reboot_delay_s
        if not 0 <= lo <= hi:
            raise ValueError(f"invalid reboot_delay_s window {self.reboot_delay_s!r}")

    # -- activity queries ------------------------------------------------------------
    @property
    def has_cloud_outages(self) -> bool:
        return self.cloud_mean_up_s > 0

    @property
    def has_cloud_gate(self) -> bool:
        return (
            self.cloud_timeout_prob > 0
            or self.cloud_rate_limit > 0
            or self.cloud_partial_prob > 0
        )

    @property
    def has_device_faults(self) -> bool:
        return self.crash_rate_per_day > 0

    @property
    def has_frame_faults(self) -> bool:
        return self.frame_drop_prob > 0 or self.frame_corrupt_prob > 0

    @property
    def has_link_flaps(self) -> bool:
        return self.link_flap_rate_per_hour > 0

    @property
    def is_none(self) -> bool:
        """True when nothing would ever be injected."""
        return not (
            self.has_cloud_outages
            or self.has_cloud_gate
            or self.has_device_faults
            or self.has_frame_faults
            or self.has_link_flaps
        )

    def retry_policy(self) -> RetryPolicy:
        """The sync-retry policy apps run under this plan."""
        return RetryPolicy(
            base_s=self.retry_base_s, cap_s=self.retry_cap_s, jitter=self.retry_jitter
        )

    # -- construction ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a CLI spec string.

        ``"none"`` (or empty) is the inert plan; ``"mild"``/``"harsh"``
        are presets; any of these may be followed by comma-separated
        ``key=value`` overrides, and a bare override list starts from the
        inert plan: ``"frame_drop_prob=0.1,crash_rate_per_day=2"``.
        """
        text = (spec or "none").strip()
        parts = [p.strip() for p in text.split(",") if p.strip()]
        plan = cls.none()
        start = 0
        if parts and "=" not in parts[0]:
            name = parts[0]
            if name not in PRESETS:
                raise ValueError(
                    f"unknown fault preset {name!r} (known: {sorted(PRESETS)})"
                )
            plan = PRESETS[name]
            start = 1
        valid = {f.name: f for f in fields(cls)}
        overrides: Dict[str, object] = {}
        for part in parts[start:]:
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in valid:
                raise ValueError(
                    f"unknown fault field {key!r} (known: {sorted(valid)})"
                )
            raw = raw.strip()
            if key == "cloud_rate_limit":
                overrides[key] = int(raw)
            elif key == "reboot_delay_s":
                lo, _, hi = raw.partition(":")
                overrides[key] = (float(lo), float(hi))
            else:
                overrides[key] = float(raw)
        return replace(plan, **overrides)

    @classmethod
    def sample(cls, seed: int) -> "FaultPlan":
        """A deterministic random plan for chaos property tests.

        One integer seed maps to one plan; the distribution covers every
        fault axis with at least a moderate rate so short chaos runs
        actually exercise the machinery.  Retry timing is kept short so
        miniature runs converge inside their quiet period.
        """
        import random

        rng = random.Random(0x5EED ^ (seed * 2654435761 % (1 << 32)))
        return cls(
            cloud_mean_up_s=rng.uniform(120.0, 900.0),
            cloud_mean_down_s=rng.uniform(60.0, 600.0),
            cloud_timeout_prob=rng.uniform(0.0, 0.3),
            cloud_rate_limit=rng.choice([0, 2, 4]),
            cloud_rate_window_s=60.0,
            cloud_partial_prob=rng.uniform(0.0, 0.4),
            crash_rate_per_day=rng.uniform(0.0, 24.0),
            reboot_delay_s=(10.0, 60.0),
            frame_drop_prob=rng.uniform(0.0, 0.2),
            frame_corrupt_prob=rng.uniform(0.0, 0.2),
            link_flap_rate_per_hour=rng.uniform(0.0, 30.0),
            retry_base_s=15.0,
            retry_cap_s=120.0,
            retry_jitter=0.25,
        )


#: Named presets for the CLI.  ``mild`` models a flaky-but-usable world
#: (short outages, light loss); ``harsh`` models paper-§V conditions —
#: infrastructure mostly absent, lossy links, frequent churn.
PRESETS: Dict[str, FaultPlan] = {
    "none": FaultPlan.none(),
    "mild": FaultPlan(
        cloud_mean_up_s=4 * 3600.0,
        cloud_mean_down_s=1800.0,
        cloud_timeout_prob=0.05,
        cloud_partial_prob=0.05,
        crash_rate_per_day=0.25,
        frame_drop_prob=0.02,
        frame_corrupt_prob=0.01,
        link_flap_rate_per_hour=2.0,
    ),
    "harsh": FaultPlan(
        cloud_mean_up_s=1800.0,
        cloud_mean_down_s=4 * 3600.0,
        cloud_timeout_prob=0.2,
        cloud_rate_limit=4,
        cloud_rate_window_s=60.0,
        cloud_partial_prob=0.25,
        crash_rate_per_day=2.0,
        frame_drop_prob=0.10,
        frame_corrupt_prob=0.05,
        link_flap_rate_per_hour=12.0,
    ),
}

#: Spec strings accepted without ``key=value`` parts (CLI help).
FAULT_PRESET_NAMES = tuple(sorted(PRESETS))
