"""The fault injector: turns a :class:`FaultPlan` into scheduled chaos.

One injector owns every fault process of a run.  All randomness comes
from HMAC-DRBG substreams derived from a single fault seed (independent
of the simulation seed), one stream per fault axis, so:

* two runs with the same plan + fault seed produce byte-identical traces,
* a plan with an axis disabled never draws from that axis's stream, so
  enabling one axis does not shift any other axis's schedule.

Every event the injector schedules carries ``owner=self``; chaos tests
call :meth:`FaultInjector.quiesce` to cancel all of them at once, restore
connectivity and reboot crashed devices, then assert convergence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.alleyoop.cloud import CloudService
from repro.crypto.drbg import HmacDrbg
from repro.faults.connectivity import CloudFaultGate, ConnectivityModel
from repro.faults.plan import FaultPlan
from repro.faults.randomness import choice_index, expovariate, uniform, uniform_in
from repro.mpc.framework import MpcFramework
from repro.net.medium import Medium
from repro.sim.engine import Simulator

_DAY_S = 86400.0
_HOUR_S = 3600.0

#: Substream labels, in derivation order.  Appending is safe; reordering
#: changes every fault schedule.
_STREAMS = ("cloud", "gate", "crash", "link", "frames")


class FaultInjector:
    """Deterministic fault processes for one simulated world."""

    def __init__(self, sim: Simulator, plan: FaultPlan, seed: int) -> None:
        self.sim = sim
        self.plan = plan
        self.seed = seed
        root = HmacDrbg.from_int(seed)
        self._streams = {name: root.spawn(name.encode()) for name in _STREAMS}
        self.connectivity: Optional[ConnectivityModel] = None
        self.gate: Optional[CloudFaultGate] = None
        self.cloud: Optional[CloudService] = None
        self.medium: Optional[Medium] = None
        self.framework: Optional[MpcFramework] = None
        self.apps: List[object] = []
        #: user_id -> (app, device) of currently-crashed nodes.
        self._down: Dict[str, Tuple[object, object]] = {}
        self._installed = False
        self.stats = {
            "crashes": 0,
            "reboots": 0,
            "link_flaps": 0,
            "frames_dropped": 0,
            "frames_corrupted": 0,
        }

    # -- wiring ------------------------------------------------------------------
    def install(
        self,
        cloud: CloudService,
        medium: Medium,
        framework: MpcFramework,
        apps: List[object],
    ) -> None:
        """Attach to a built world and start every enabled fault process.

        ``apps`` are AlleyOop apps (anything exposing ``user_id``,
        ``sos.adhoc.peer_id.device_id``, ``crash()`` and ``reboot()``);
        they are processed in sorted user-id order for determinism.
        """
        if self._installed:
            raise RuntimeError("injector already installed")
        self._installed = True
        self.cloud = cloud
        self.medium = medium
        self.framework = framework
        self.apps = sorted(apps, key=lambda a: a.user_id)
        plan = self.plan
        if plan.has_cloud_outages:
            self.connectivity = ConnectivityModel(
                self.sim, cloud, plan, self._streams["cloud"], owner=self
            )
            self.connectivity.start()
        if plan.has_cloud_gate:
            self.gate = CloudFaultGate(self.sim, plan, self._streams["gate"])
            cloud.sync_faults = self.gate.admit
        if plan.has_device_faults:
            for app in self.apps:
                self._schedule_crash(app)
        if plan.has_frame_faults:
            framework.frame_fault = self._frame_fault
        if plan.has_link_flaps:
            self._schedule_flap()

    # -- device crash / reboot -----------------------------------------------------
    def _schedule_crash(self, app) -> None:
        gap = expovariate(
            self._streams["crash"], _DAY_S / self.plan.crash_rate_per_day
        )
        self.sim.schedule_in(
            gap, self._crash, app, owner=self, name=f"fault-crash:{app.user_id}"
        )

    def _crash(self, app) -> None:
        device_id = app.sos.adhoc.peer_id.device_id
        device = self.medium.devices.get(device_id)
        # A powered-off device (duty cycle) or an already-crashed one has
        # nothing volatile to lose; skip the injection but keep the
        # Poisson process going.
        if (
            device is not None
            and device.powered_on
            and app.user_id not in self._down
        ):
            self.stats["crashes"] += 1
            self.sim.trace.emit(
                self.sim.now, "fault", "crash", user=app.user_id, device=device_id
            )
            self.medium.drop_links_of(device_id)
            device.power_off()
            app.crash()
            self._down[app.user_id] = (app, device)
            delay = uniform_in(self._streams["crash"], *self.plan.reboot_delay_s)
            self.sim.schedule_in(
                delay, self._reboot, app, owner=self, name=f"fault-reboot:{app.user_id}"
            )
        self._schedule_crash(app)

    def _reboot(self, app) -> None:
        entry = self._down.pop(app.user_id, None)
        if entry is None:
            return
        _, device = entry
        self.stats["reboots"] += 1
        self.sim.trace.emit(
            self.sim.now, "fault", "reboot", user=app.user_id, device=device.device_id
        )
        device.power_on()
        app.reboot()

    # -- link flaps ------------------------------------------------------------------
    def _schedule_flap(self) -> None:
        gap = expovariate(
            self._streams["link"], _HOUR_S / self.plan.link_flap_rate_per_hour
        )
        self.sim.schedule_in(gap, self._flap, owner=self, name="fault-link-flap")

    def _flap(self) -> None:
        keys = self.medium.active_link_keys()
        if keys:
            a, b = keys[choice_index(self._streams["link"], len(keys))]
            self.stats["link_flaps"] += 1
            self.sim.trace.emit(self.sim.now, "fault", "link_flap", a=a, b=b)
            self.medium.force_drop(a, b)
        self._schedule_flap()

    # -- frame faults -----------------------------------------------------------------
    def _frame_fault(self, pair: Tuple[str, str], data: bytes) -> Optional[bytes]:
        """MpcFramework delivery hook: None drops the frame, otherwise the
        returned bytes are delivered (possibly corrupted — the receiver
        must surface that as a decode/security diagnostic, never a crash)."""
        plan = self.plan
        u = uniform(self._streams["frames"])
        if u < plan.frame_drop_prob:
            self.stats["frames_dropped"] += 1
            self.sim.trace.emit(
                self.sim.now, "fault", "frame_drop", a=pair[0], b=pair[1], size=len(data)
            )
            return None
        if u < plan.frame_drop_prob + plan.frame_corrupt_prob and data:
            index = choice_index(self._streams["frames"], len(data))
            mask = 1 + choice_index(self._streams["frames"], 255)
            self.stats["frames_corrupted"] += 1
            self.sim.trace.emit(
                self.sim.now, "fault", "frame_corrupt",
                a=pair[0], b=pair[1], offset=index,
            )
            return data[:index] + bytes([data[index] ^ mask]) + data[index + 1 :]
        return data

    # -- convergence support ------------------------------------------------------------
    def quiesce(self) -> int:
        """Stop injecting and heal the world (chaos-test epilogue).

        Cancels every injector-owned scheduled event, detaches the cloud
        gate and frame hook, forces the cloud online and reboots any
        still-crashed device.  Returns the number of cancelled events.
        The retry/backoff machinery is deliberately left running — the
        whole point of the quiet period is to watch it converge.
        """
        cancelled = self.sim.cancel_owned(self)
        if self.framework is not None:
            self.framework.frame_fault = None
        if self.cloud is not None:
            self.cloud.sync_faults = None
            self.cloud.online = True
        for user_id in sorted(self._down):
            app, device = self._down.pop(user_id)
            device.power_on()
            app.reboot()
        return cancelled
