"""Exponential backoff with jitter for the resilient cloud-sync path.

Deliberately dependency-free: the application layer imports this module
directly (not the :mod:`repro.faults` package), so attaching a retry
policy to an app never drags the injector machinery into the import graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class RetryPolicy:
    """Truncated binary exponential backoff with multiplicative jitter.

    ``delay(attempt, u)`` for attempt 0, 1, 2, ... is::

        min(cap_s, base_s * 2**attempt) * (1 + jitter * u)

    with ``u`` a uniform [0, 1) draw supplied by the caller — the policy
    itself is a pure function, so determinism is decided entirely by
    where the caller gets its randomness (the sim's named streams, for
    byte-identical replays).
    """

    base_s: float = 30.0
    cap_s: float = 900.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ValueError("base_s must be positive")
        if self.cap_s < self.base_s:
            raise ValueError("cap_s must be >= base_s")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def delay(self, attempt: int, u: float = 0.0) -> float:
        """Backoff delay before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"negative attempt {attempt}")
        if not 0.0 <= u < 1.0:
            raise ValueError(f"jitter draw must be in [0, 1), got {u!r}")
        # Cap the exponent before shifting so huge attempt counts cannot
        # overflow into bignum territory.
        exponent = min(attempt, 63)
        raw = self.base_s * (1 << exponent)
        return min(self.cap_s, raw) * (1.0 + self.jitter * u)

    def schedule(self, attempt: int, rand: Callable[[], float]) -> float:
        """``delay`` with the jitter draw taken from ``rand()``."""
        return self.delay(attempt, rand() if self.jitter > 0 else 0.0)
