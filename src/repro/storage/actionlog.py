"""Append-only action log.

Every user interaction is an :class:`Action` with a device-local sequence
number.  The log is the source of truth for both dissemination (actions
are what DTN routing spreads) and cloud sync (the sync queue replays the
log suffix the cloud has not acknowledged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional


class ActionKind(Enum):
    POST = "post"
    FOLLOW = "follow"
    UNFOLLOW = "unfollow"
    #: One compact record for a whole batch of follows (payload carries
    #: the ordered ``targets`` tuple).  The day-0 bulk bootstrap logs one
    #: of these per user instead of one FOLLOW per edge, which is what
    #: makes large-N world builds O(users) instead of O(edges) in log
    #: records, sync rounds and trace events.
    FOLLOW_MANY = "follow_many"


@dataclass(frozen=True)
class Action:
    """One logged user action."""

    seq: int
    kind: ActionKind
    actor: str
    created_at: float
    payload: Dict[str, Any] = field(default_factory=dict)


class ActionLog:
    """Monotonic, append-only log with O(1) append and indexed reads."""

    def __init__(self) -> None:
        self._actions: List[Action] = []

    def append(self, kind: ActionKind, actor: str, created_at: float, **payload: Any) -> Action:
        action = Action(
            seq=len(self._actions) + 1,
            kind=kind,
            actor=actor,
            created_at=created_at,
            payload=dict(payload),
        )
        self._actions.append(action)
        return action

    def __len__(self) -> int:
        return len(self._actions)

    def __iter__(self) -> Iterator[Action]:
        return iter(self._actions)

    def since(self, seq: int) -> List[Action]:
        """Actions with sequence numbers greater than ``seq``."""
        if seq < 0:
            raise ValueError(f"negative sequence {seq}")
        return self._actions[seq:]

    def last_seq(self) -> int:
        return len(self._actions)

    def of_kind(self, kind: ActionKind) -> List[Action]:
        return [a for a in self._actions if a.kind is kind]

    def get(self, seq: int) -> Optional[Action]:
        if 1 <= seq <= len(self._actions):
            return self._actions[seq - 1]
        return None
