"""A small key-value store with snapshot/rollback semantics.

Holds app preferences (selected routing protocol, notification settings)
and middleware runtime state.  ``transaction()`` gives all-or-nothing
multi-key updates, mirroring what a mobile app gets from SQLite.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional


class KeyValueStore:
    """In-memory KV store with namespacing and transactions."""

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def put(self, key: str, value: Any) -> None:
        if not key:
            raise ValueError("empty key")
        self._data[key] = value

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys_with_prefix(self, prefix: str) -> list:
        return sorted(k for k in self._data if k.startswith(prefix))

    @contextmanager
    def transaction(self) -> Iterator["KeyValueStore"]:
        """All-or-nothing update block::

            with store.transaction() as txn:
                txn.put("a", 1)
                txn.put("b", 2)   # an exception here rolls back "a" too
        """
        snapshot = dict(self._data)
        try:
            yield self
        except BaseException:
            # BaseException, not Exception: a KeyboardInterrupt landing
            # mid-transaction (or GeneratorExit from an abandoned block)
            # must also roll back, or the store keeps a half-applied write.
            self._data = snapshot
            raise

    def namespace(self, prefix: str) -> "NamespacedView":
        return NamespacedView(self, prefix)


class NamespacedView:
    """A prefixed view over a parent store (no copying)."""

    def __init__(self, parent: KeyValueStore, prefix: str) -> None:
        if not prefix:
            raise ValueError("empty namespace prefix")
        self._parent = parent
        self._prefix = prefix if prefix.endswith(":") else prefix + ":"

    def get(self, key: str, default: Any = None) -> Any:
        return self._parent.get(self._prefix + key, default)

    def put(self, key: str, value: Any) -> None:
        self._parent.put(self._prefix + key, value)

    def delete(self, key: str) -> None:
        self._parent.delete(self._prefix + key)

    def __contains__(self, key: str) -> bool:
        return (self._prefix + key) in self._parent
