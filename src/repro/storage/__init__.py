"""Device-local storage substrate.

AlleyOop Social saves every user action to "the local database on the
mobile device" and synchronises "with the cloud when the Internet becomes
available" (paper §V).  This package supplies that local database:

* :mod:`repro.storage.actionlog` — an append-only, sequence-numbered log
  of user actions (post / follow / unfollow),
* :mod:`repro.storage.kvstore` — a small transactional key-value store
  used for app preferences and middleware state,
* :mod:`repro.storage.messagestore` — the per-author message store whose
  high-water marks become the plain-text advertisement dictionary,
* :mod:`repro.storage.syncqueue` — the at-least-once cloud sync queue.
"""

from repro.storage.actionlog import Action, ActionKind, ActionLog
from repro.storage.kvstore import KeyValueStore
from repro.storage.messagestore import MessageStore, StoredMessage
from repro.storage.syncqueue import SyncQueue

__all__ = [
    "Action",
    "ActionKind",
    "ActionLog",
    "KeyValueStore",
    "MessageStore",
    "StoredMessage",
    "SyncQueue",
]
