"""Per-author message store.

Messages in AlleyOop are identified by ``(author_user_id, message_number)``
with numbers assigned 1, 2, 3, ... by the author's own device (paper §V-A:
the advertisement dictionary maps each UserID to "the latest MessageNumber
that the advertising device has for the particular UserID").

The store therefore tracks, per author:

* the set of stored message numbers (copies received out of order leave
  gaps),
* the advertised high-water mark (the *latest* number held, per the
  paper — a browsing peer then requests what it is missing),
* the byte budget used, so routing protocols can enforce buffer limits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class StoredMessage:
    """One message copy held by a device (own or forwarded).

    ``hops`` counts D2D transfers from the author's device to this copy:
    0 on the author's own device, 1 on a direct recipient, etc.  The
    evaluation splits results into "1-hop" and "All" using this field
    (paper Fig. 4c/4d).
    """

    author_id: str
    number: int
    created_at: float
    body: bytes
    signature: bytes
    author_cert: bytes
    hops: int = 0
    received_at: Optional[float] = None

    @property
    def key(self) -> tuple:
        return (self.author_id, self.number)

    @property
    def size_bytes(self) -> int:
        return len(self.body) + len(self.signature) + len(self.author_cert) + 64

    def forwarded_copy(self, received_at: float) -> "StoredMessage":
        """The copy a receiving device stores: one hop further out."""
        return StoredMessage(
            author_id=self.author_id,
            number=self.number,
            created_at=self.created_at,
            body=self.body,
            signature=self.signature,
            author_cert=self.author_cert,
            hops=self.hops + 1,
            received_at=received_at,
        )


class MessageStore:
    """All message copies a device holds, indexed by author."""

    def __init__(self, capacity_bytes: Optional[int] = None) -> None:
        self._by_author: Dict[str, Dict[int, StoredMessage]] = {}
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self.evicted = 0

    # -- writes -------------------------------------------------------------
    def add(self, message: StoredMessage) -> bool:
        """Store a message copy.  Returns False for duplicates.

        When a capacity is set and exceeded, the oldest *forwarded* copies
        are evicted first (a device never evicts its own messages).
        """
        per_author = self._by_author.setdefault(message.author_id, {})
        if message.number in per_author:
            return False
        per_author[message.number] = message
        self.used_bytes += message.size_bytes
        if self.capacity_bytes is not None:
            self._evict_to_capacity()
        return True

    def _evict_to_capacity(self) -> None:
        if self.used_bytes <= self.capacity_bytes:
            return
        # Oldest forwarded copies go first (hops > 0), then nothing: a
        # store holding only own messages is allowed to exceed capacity.
        candidates = sorted(
            (m for m in self.all_messages() if m.hops > 0),
            key=lambda m: (m.received_at if m.received_at is not None else m.created_at),
        )
        for message in candidates:
            if self.used_bytes <= self.capacity_bytes:
                break
            del self._by_author[message.author_id][message.number]
            self.used_bytes -= message.size_bytes
            self.evicted += 1

    # -- reads ----------------------------------------------------------------
    def get(self, author_id: str, number: int) -> Optional[StoredMessage]:
        return self._by_author.get(author_id, {}).get(number)

    def has(self, author_id: str, number: int) -> bool:
        return number in self._by_author.get(author_id, {})

    def highest_number(self, author_id: str) -> int:
        """The advertised high-water mark for ``author_id`` (0 if none)."""
        per_author = self._by_author.get(author_id)
        return max(per_author) if per_author else 0

    def numbers_for(self, author_id: str) -> List[int]:
        return sorted(self._by_author.get(author_id, ()))

    def missing_below(self, author_id: str, up_to: int) -> List[int]:
        """Numbers in [1, up_to] this device lacks — what to request when a
        peer advertises ``up_to`` for this author."""
        held = self._by_author.get(author_id, {})
        return [n for n in range(1, up_to + 1) if n not in held]

    def messages_for(self, author_id: str, numbers: List[int]) -> List[StoredMessage]:
        per_author = self._by_author.get(author_id, {})
        return [per_author[n] for n in numbers if n in per_author]

    def authors(self) -> List[str]:
        return sorted(a for a, msgs in self._by_author.items() if msgs)

    def all_messages(self) -> List[StoredMessage]:
        out = []
        for per_author in self._by_author.values():
            out.extend(per_author.values())
        return out

    def advertisement_marks(self) -> Dict[str, int]:
        """``{author_id: highest_number}`` — the §V-A discovery dictionary."""
        return {a: max(msgs) for a, msgs in self._by_author.items() if msgs}

    def __len__(self) -> int:
        return sum(len(m) for m in self._by_author.values())
