"""Cloud synchronisation queue.

Paper §V: actions are saved locally, then synchronised "with the cloud
when the Internet becomes available".  The queue tracks the acknowledged
log prefix and replays the unacknowledged suffix on each sync opportunity,
giving at-least-once delivery with idempotent (seq-keyed) application at
the cloud side.
"""

from __future__ import annotations

from typing import Callable, List

from repro.storage.actionlog import Action, ActionLog


class SyncQueue:
    """Replays unacknowledged actions to a cloud uplink when online."""

    def __init__(self, log: ActionLog) -> None:
        self._log = log
        self._acked_seq = 0
        self.sync_count = 0
        #: Size of the largest batch ever pushed in one round — the bulk
        #: bootstrap bench asserts a user's whole day-0 follow list went
        #: up in a single round (per-edge wiring never exceeds 1 here).
        self.max_batch = 0

    @property
    def pending(self) -> List[Action]:
        return self._log.since(self._acked_seq)

    @property
    def pending_count(self) -> int:
        return self._log.last_seq() - self._acked_seq

    @property
    def acked_seq(self) -> int:
        return self._acked_seq

    def sync(self, uplink: Callable[[List[Action]], int]) -> int:
        """Push pending actions through ``uplink``.

        ``uplink`` receives the pending batch and returns the highest
        sequence number durably accepted (it may accept a prefix — the
        unaccepted suffix simply stays pending and is replayed on the
        next opportunity, so a bulk flush degrades gracefully to
        multiple rounds when the cloud stops mid-batch).
        Returns the number of actions newly acknowledged.
        """
        batch = self.pending
        if not batch:
            return 0
        self.max_batch = max(self.max_batch, len(batch))
        accepted = uplink(batch)
        if accepted < self._acked_seq or accepted > self._log.last_seq():
            raise ValueError(
                f"uplink acknowledged {accepted}, valid range is "
                f"[{self._acked_seq}, {self._log.last_seq()}]"
            )
        newly = accepted - self._acked_seq
        self._acked_seq = accepted
        self.sync_count += 1
        return newly
