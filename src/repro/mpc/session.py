"""MPC sessions (MCSession analogue).

A session is one app's endpoint for connected-peer communication.  Peers
are added by the invitation flow (browser invites, advertiser accepts) and
removed when the radio link drops.  Data transfer is reliable-or-
disconnect, like MCSession's ``.reliable`` mode: either the bytes arrive
(after a bandwidth-accurate delay) or the peer transitions to
``NOT_CONNECTED`` and the sender learns the transfer failed.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.mpc.errors import NotConnectedError
from repro.mpc.peer import PeerID

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpc.framework import MpcFramework


class SessionState(Enum):
    """MCSessionState analogue."""

    NOT_CONNECTED = "not_connected"
    CONNECTING = "connecting"
    CONNECTED = "connected"


class SessionDelegate:
    """Callback interface; subclass and override what you need."""

    def session_peer_connected(self, session: "Session", peer: PeerID) -> None:
        """Peer finished the handshake and can receive data."""

    def session_peer_disconnected(self, session: "Session", peer: PeerID) -> None:
        """Peer left (link drop, remote stop, or explicit disconnect)."""

    def session_received_data(self, session: "Session", data: bytes, from_peer: PeerID) -> None:
        """Reliable payload arrived from ``from_peer``."""


class Session:
    """One endpoint of (possibly several) peer connections.

    MPC encrypts session traffic; we model that as a boolean contract
    (``encrypted``) — the SOS layer adds its own end-to-end cryptography
    with certificates on top, which is the part the paper actually
    specifies (§IV).
    """

    def __init__(
        self,
        framework: "MpcFramework",
        peer: PeerID,
        delegate: Optional[SessionDelegate] = None,
        encrypted: bool = True,
    ) -> None:
        self.framework = framework
        self.peer = peer
        self.delegate = delegate or SessionDelegate()
        self.encrypted = encrypted
        self._peer_states: Dict[PeerID, SessionState] = {}
        framework.register_session(self)

    # -- state -------------------------------------------------------------------
    @property
    def connected_peers(self) -> List[PeerID]:
        return [p for p, s in self._peer_states.items() if s is SessionState.CONNECTED]

    def state_of(self, peer: PeerID) -> SessionState:
        return self._peer_states.get(peer, SessionState.NOT_CONNECTED)

    # -- data ---------------------------------------------------------------------
    def send(
        self,
        data: bytes,
        to_peer: PeerID,
        on_complete: Optional[Callable[[bool], None]] = None,
    ) -> None:
        """Reliably send ``data`` to a connected peer.

        ``on_complete(True)`` fires when the bytes were delivered,
        ``on_complete(False)`` if the link failed mid-transfer.  Raises
        :class:`NotConnectedError` if the peer is not connected *now*.
        """
        if self.state_of(to_peer) is not SessionState.CONNECTED:
            raise NotConnectedError(f"{to_peer} is not connected to {self.peer}")
        self.framework.transfer(self, to_peer, data, on_complete)

    def disconnect(self) -> None:
        """Leave all connections (MCSession.disconnect analogue)."""
        self.framework.session_disconnect_all(self)

    # -- framework-internal state transitions ---------------------------------------
    def _set_state(self, peer: PeerID, state: SessionState) -> None:
        previous = self._peer_states.get(peer, SessionState.NOT_CONNECTED)
        if state is SessionState.NOT_CONNECTED:
            self._peer_states.pop(peer, None)
        else:
            self._peer_states[peer] = state
        if previous is not state:
            if state is SessionState.CONNECTED:
                self.delegate.session_peer_connected(self, peer)
            elif state is SessionState.NOT_CONNECTED and previous is SessionState.CONNECTED:
                self.delegate.session_peer_disconnected(self, peer)

    def _deliver(self, data: bytes, from_peer: PeerID) -> None:
        self.delegate.session_received_data(self, data, from_peer)
