"""Service advertising (MCNearbyServiceAdvertiser analogue).

An advertiser broadcasts a *plain-text* discovery dictionary — in SOS this
is the UserID -> latest-MessageNumber table (paper §V-A) that lets a
browsing node decide whether a connection is worth requesting before any
session or cryptography exists.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.mpc.peer import PeerID
from repro.mpc.session import Session

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpc.framework import MpcFramework


class Invitation:
    """A pending connection invitation delivered to an advertiser.

    The delegate answers by calling :meth:`accept` with the session that
    should host the new peer, or :meth:`decline`.  Answering twice is an
    error; an unanswered invitation dies with the link.
    """

    def __init__(
        self,
        framework: "MpcFramework",
        from_peer: PeerID,
        to_peer: PeerID,
        context: bytes,
        inviter_session: Session,
    ) -> None:
        self._framework = framework
        self.from_peer = from_peer
        self.to_peer = to_peer
        self.context = context
        self._inviter_session = inviter_session
        self._answered = False
        self.cancelled = False

    def accept(self, session: Session) -> None:
        if self._answered:
            raise RuntimeError("invitation already answered")
        self._answered = True
        if not self.cancelled:
            self._framework.complete_invitation(self, session)

    def decline(self) -> None:
        if self._answered:
            raise RuntimeError("invitation already answered")
        self._answered = True


class AdvertiserDelegate:
    """Callback interface for incoming invitations."""

    def advertiser_received_invitation(
        self, advertiser: "ServiceAdvertiser", invitation: Invitation
    ) -> None:
        """Answer via ``invitation.accept(session)`` / ``invitation.decline()``."""


class ServiceAdvertiser:
    """Advertises a service type plus a small plain-text info dictionary."""

    #: MPC limits the discovery dictionary to a small payload; we enforce
    #: a byte budget so routing layers keep advertisements compact.
    MAX_INFO_BYTES = 4096

    def __init__(
        self,
        framework: "MpcFramework",
        peer: PeerID,
        service_type: str,
        discovery_info: Optional[Dict[str, str]] = None,
        delegate: Optional[AdvertiserDelegate] = None,
    ) -> None:
        if not service_type:
            raise ValueError("service_type must be non-empty")
        self.framework = framework
        self.peer = peer
        self.service_type = service_type
        self._info: Dict[str, str] = {}
        self.delegate = delegate or AdvertiserDelegate()
        self.active = False
        if discovery_info:
            self.set_discovery_info(discovery_info)
        framework.register_advertiser(self)

    @property
    def discovery_info(self) -> Dict[str, str]:
        return dict(self._info)

    @staticmethod
    def info_size_bytes(info: Dict[str, str]) -> int:
        return sum(len(k.encode()) + len(v.encode()) for k, v in info.items())

    def set_discovery_info(self, info: Dict[str, str]) -> None:
        """Replace the advertised dictionary.

        Real MPC requires restarting the advertiser to change the
        dictionary; we model the restart implicitly and re-announce to
        in-range browsers so they observe the new MessageNumbers.
        """
        size = self.info_size_bytes(info)
        if size > self.MAX_INFO_BYTES:
            raise ValueError(
                f"discovery info too large ({size} > {self.MAX_INFO_BYTES} bytes); "
                "advertise a digest instead"
            )
        self._info = dict(info)
        if self.active:
            self.framework.reannounce(self)

    def start(self) -> None:
        if not self.active:
            self.active = True
            self.framework.advertiser_started(self)

    def stop(self) -> None:
        if self.active:
            self.active = False
            self.framework.advertiser_stopped(self)
