"""Service browsing (MCNearbyServiceBrowser analogue)."""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.mpc.peer import PeerID
from repro.mpc.session import Session

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpc.framework import MpcFramework


class BrowserDelegate:
    """Callback interface for peer discovery."""

    def browser_found_peer(
        self, browser: "ServiceBrowser", peer: PeerID, info: Dict[str, str]
    ) -> None:
        """A peer advertising our service type came into radio range (or
        refreshed its discovery dictionary)."""

    def browser_lost_peer(self, browser: "ServiceBrowser", peer: PeerID) -> None:
        """The peer left radio range or stopped advertising."""


class ServiceBrowser:
    """Discovers advertisers of a service type within radio range."""

    def __init__(
        self,
        framework: "MpcFramework",
        peer: PeerID,
        service_type: str,
        delegate: Optional[BrowserDelegate] = None,
    ) -> None:
        if not service_type:
            raise ValueError("service_type must be non-empty")
        self.framework = framework
        self.peer = peer
        self.service_type = service_type
        self.delegate = delegate or BrowserDelegate()
        self.active = False
        framework.register_browser(self)

    def start(self) -> None:
        if not self.active:
            self.active = True
            self.framework.browser_started(self)

    def stop(self) -> None:
        if self.active:
            self.active = False

    def invite_peer(
        self,
        peer: PeerID,
        session: Session,
        context: bytes = b"",
    ) -> None:
        """Invite a discovered peer into ``session``.

        The invitation is delivered to the remote advertiser's delegate;
        on acceptance both sessions connect after the radio's session
        setup latency.  If the link drops first the invitation silently
        dies (matching MPC's timeout behaviour).
        """
        self.framework.invite(self, peer, session, context)
