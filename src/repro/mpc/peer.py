"""Peer identities (MCPeerID analogue)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PeerID:
    """A peer identity bound to a physical device.

    ``display_name`` mirrors MCPeerID's displayName; ``device_id`` binds
    the peer to the simulated hardware so the framework can resolve radio
    links.  One device can host several peers (several apps embedding the
    SOS middleware — the paper's per-app-instance design, §III).
    """

    display_name: str
    device_id: str

    def __post_init__(self) -> None:
        if not self.display_name:
            raise ValueError("display_name must be non-empty")
        if not self.device_id:
            raise ValueError("device_id must be non-empty")

    def __str__(self) -> str:
        return f"{self.display_name}@{self.device_id}"
