"""MPC error hierarchy."""

from __future__ import annotations


class MpcError(RuntimeError):
    """Base class for Multipeer Connectivity simulation errors."""


class NotConnectedError(MpcError):
    """Raised when sending to a peer that is not in the connected state."""


class SendError(MpcError):
    """Raised when a queued transfer cannot be initiated."""
