"""The MPC hub: wires advertisers, browsers and sessions to the medium.

Responsibilities:

* peer registry per device (a device may host several apps, each with its
  own service type — the paper's per-app middleware instance design),
* discovery: when a radio link comes up, every active browser learns about
  every active matching advertiser on the other device (and again when an
  advertiser refreshes its discovery dictionary),
* invitations: delivered after a small control-channel latency, accepted
  invitations connect both sessions after the radio's setup latency,
* transfers: bandwidth-accurate, serialised per device pair, failed (with
  session disconnect) if the link drops mid-flight,
* teardown: when a link drops, sessions between the two devices
  disconnect and browsers receive ``lost_peer``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

from repro.mpc.advertiser import Invitation, ServiceAdvertiser
from repro.mpc.browser import ServiceBrowser
from repro.mpc.errors import SendError
from repro.mpc.peer import PeerID
from repro.mpc.session import Session, SessionState
from repro.net.bandwidth import transfer_duration
from repro.net.contact import pair_key
from repro.net.device import Device
from repro.net.medium import Medium
from repro.net.radio import RadioProfile
from repro.sim.engine import Event, Simulator

#: One-way latency for small control messages (invitations, announces).
CONTROL_LATENCY_S = 0.2


class _Transfer:
    """An in-flight reliable payload."""

    __slots__ = ("sender", "from_peer", "to_peer", "data", "on_complete", "event", "pair")

    def __init__(self, sender, from_peer, to_peer, data, on_complete, pair):
        self.sender = sender
        self.from_peer = from_peer
        self.to_peer = to_peer
        self.data = data
        self.on_complete = on_complete
        self.event: Optional[Event] = None
        self.pair = pair


class MpcFramework:
    """Simulated Multipeer Connectivity runtime."""

    def __init__(self, sim: Simulator, medium: Medium) -> None:
        self.sim = sim
        self.medium = medium
        self._advertisers: Dict[str, List[ServiceAdvertiser]] = defaultdict(list)
        self._browsers: Dict[str, List[ServiceBrowser]] = defaultdict(list)
        self._sessions: Dict[str, List[Session]] = defaultdict(list)
        self._transfers: Dict[Tuple[str, str], List[_Transfer]] = defaultdict(list)
        self._pair_busy_until: Dict[Tuple[str, str], float] = {}
        medium.on_link_up(self._link_up)
        medium.on_link_down(self._link_down)
        #: Optional delivery hook (fault injection): called with
        #: ``(pair, data)`` when a transfer would complete successfully.
        #: Returning None drops the frame (the reliable transfer fails,
        #: the sender's completion callback gets False); returning bytes
        #: delivers them instead of the original payload.
        self.frame_fault: Optional[Callable[[Tuple[str, str], bytes], Optional[bytes]]] = None
        self.stats = {
            "invitations_sent": 0,
            "invitations_accepted": 0,
            "transfers_completed": 0,
            "transfers_failed": 0,
            "bytes_delivered": 0,
        }

    # -- registration -------------------------------------------------------------
    def register_advertiser(self, advertiser: ServiceAdvertiser) -> None:
        self._advertisers[advertiser.peer.device_id].append(advertiser)

    def register_browser(self, browser: ServiceBrowser) -> None:
        self._browsers[browser.peer.device_id].append(browser)

    def register_session(self, session: Session) -> None:
        self._sessions[session.peer.device_id].append(session)

    # -- discovery -------------------------------------------------------------------
    def _link_up(self, a: Device, b: Device, radio: RadioProfile) -> None:
        self._announce_between(a.device_id, b.device_id)
        self._announce_between(b.device_id, a.device_id)

    def _announce_between(self, browser_device: str, advertiser_device: str) -> None:
        """Tell browsers on one device about advertisers on the other."""
        for browser in self._browsers[browser_device]:
            if not browser.active:
                continue
            for advertiser in self._advertisers[advertiser_device]:
                if not advertiser.active or advertiser.service_type != browser.service_type:
                    continue
                self.sim.schedule_in(
                    CONTROL_LATENCY_S,
                    self._deliver_found,
                    browser,
                    advertiser,
                    name="mpc-found",
                )

    def _deliver_found(self, browser: ServiceBrowser, advertiser: ServiceAdvertiser) -> None:
        # Re-check validity at delivery time: the link (or either endpoint)
        # may have gone away during the control latency.
        if not browser.active or not advertiser.active:
            return
        if self.medium.link_between(browser.peer.device_id, advertiser.peer.device_id) is None:
            return
        browser.delegate.browser_found_peer(browser, advertiser.peer, advertiser.discovery_info)

    def advertiser_started(self, advertiser: ServiceAdvertiser) -> None:
        self.reannounce(advertiser)

    def advertiser_stopped(self, advertiser: ServiceAdvertiser) -> None:
        for neighbour in self.medium.neighbours_of(advertiser.peer.device_id):
            for browser in self._browsers[neighbour]:
                if browser.active and browser.service_type == advertiser.service_type:
                    browser.delegate.browser_lost_peer(browser, advertiser.peer)

    def browser_started(self, browser: ServiceBrowser) -> None:
        for neighbour in self.medium.neighbours_of(browser.peer.device_id):
            self._announce_between(browser.peer.device_id, neighbour)

    def reannounce(self, advertiser: ServiceAdvertiser) -> None:
        """Push a (possibly refreshed) advertisement to in-range browsers."""
        for neighbour in self.medium.neighbours_of(advertiser.peer.device_id):
            for browser in self._browsers[neighbour]:
                if browser.active and browser.service_type == advertiser.service_type:
                    self.sim.schedule_in(
                        CONTROL_LATENCY_S,
                        self._deliver_found,
                        browser,
                        advertiser,
                        name="mpc-reannounce",
                    )

    # -- invitations --------------------------------------------------------------------
    def invite(
        self,
        browser: ServiceBrowser,
        remote_peer: PeerID,
        session: Session,
        context: bytes,
    ) -> None:
        radio = self.medium.link_between(browser.peer.device_id, remote_peer.device_id)
        if radio is None:
            return  # peer already gone; invitation silently dies
        self.stats["invitations_sent"] += 1
        invitation = Invitation(
            framework=self,
            from_peer=browser.peer,
            to_peer=remote_peer,
            context=context,
            inviter_session=session,
        )
        self.sim.schedule_in(
            CONTROL_LATENCY_S, self._deliver_invitation, invitation, name="mpc-invite"
        )

    def _deliver_invitation(self, invitation: Invitation) -> None:
        if self.medium.link_between(
            invitation.from_peer.device_id, invitation.to_peer.device_id
        ) is None:
            invitation.cancelled = True
            return
        for advertiser in self._advertisers[invitation.to_peer.device_id]:
            if advertiser.active and advertiser.peer == invitation.to_peer:
                advertiser.delegate.advertiser_received_invitation(advertiser, invitation)
                return
        invitation.cancelled = True  # advertiser stopped meanwhile

    def complete_invitation(self, invitation: Invitation, acceptor_session: Session) -> None:
        radio = self.medium.link_between(
            invitation.from_peer.device_id, invitation.to_peer.device_id
        )
        if radio is None:
            return  # link died between acceptance and handshake
        self.stats["invitations_accepted"] += 1
        inviter_session = invitation._inviter_session
        inviter_session._set_state(invitation.to_peer, SessionState.CONNECTING)
        acceptor_session._set_state(invitation.from_peer, SessionState.CONNECTING)
        self.sim.schedule_in(
            radio.setup_latency_s,
            self._finish_handshake,
            inviter_session,
            acceptor_session,
            invitation.from_peer,
            invitation.to_peer,
            name="mpc-handshake",
        )

    def _finish_handshake(
        self,
        inviter_session: Session,
        acceptor_session: Session,
        inviter_peer: PeerID,
        acceptor_peer: PeerID,
    ) -> None:
        if self.medium.link_between(inviter_peer.device_id, acceptor_peer.device_id) is None:
            inviter_session._set_state(acceptor_peer, SessionState.NOT_CONNECTED)
            acceptor_session._set_state(inviter_peer, SessionState.NOT_CONNECTED)
            return
        inviter_session._set_state(acceptor_peer, SessionState.CONNECTED)
        acceptor_session._set_state(inviter_peer, SessionState.CONNECTED)

    # -- data transfer ------------------------------------------------------------------
    def transfer(
        self,
        session: Session,
        to_peer: PeerID,
        data: bytes,
        on_complete: Optional[Callable[[bool], None]],
    ) -> None:
        pair = pair_key(session.peer.device_id, to_peer.device_id)
        radio = self.medium.link_between(*pair)
        if radio is None:
            raise SendError(f"no radio link between {pair[0]} and {pair[1]}")
        transfer = _Transfer(session, session.peer, to_peer, data, on_complete, pair)
        # Serialise transfers that share the radio pair: each starts when
        # the previous one finishes.
        start = max(self.sim.now, self._pair_busy_until.get(pair, self.sim.now))
        finish = start + transfer_duration(len(data), radio)
        self._pair_busy_until[pair] = finish
        transfer.event = self.sim.schedule_at(
            finish, self._complete_transfer, transfer, name="mpc-transfer"
        )
        self._transfers[pair].append(transfer)

    def _complete_transfer(self, transfer: _Transfer) -> None:
        self._transfers[transfer.pair] = [
            t for t in self._transfers[transfer.pair] if t is not transfer
        ]
        receiver = self._find_session_for(transfer.to_peer, transfer.from_peer)
        if receiver is None or self.medium.link_between(*transfer.pair) is None:
            self.stats["transfers_failed"] += 1
            if transfer.on_complete:
                transfer.on_complete(False)
            return
        data = transfer.data
        if self.frame_fault is not None:
            data = self.frame_fault(transfer.pair, data)
            if data is None:
                self.stats["transfers_failed"] += 1
                if transfer.on_complete:
                    transfer.on_complete(False)
                return
        self.stats["transfers_completed"] += 1
        self.stats["bytes_delivered"] += len(data)
        if transfer.on_complete:
            transfer.on_complete(True)
        receiver._deliver(data, transfer.from_peer)

    def _find_session_for(self, owner: PeerID, connected_to: PeerID) -> Optional[Session]:
        for session in self._sessions[owner.device_id]:
            if session.peer == owner and session.state_of(connected_to) is SessionState.CONNECTED:
                return session
        return None

    # -- teardown -----------------------------------------------------------------------
    def _link_down(self, a: Device, b: Device, radio: RadioProfile) -> None:
        pair = pair_key(a.device_id, b.device_id)
        # Fail in-flight transfers.
        for transfer in self._transfers.pop(pair, []):
            if transfer.event is not None:
                transfer.event.cancel()
            self.stats["transfers_failed"] += 1
            if transfer.on_complete:
                transfer.on_complete(False)
        self._pair_busy_until.pop(pair, None)
        # Disconnect sessions spanning the pair.
        for session in self._sessions[a.device_id]:
            for peer in list(session.connected_peers):
                if peer.device_id == b.device_id:
                    session._set_state(peer, SessionState.NOT_CONNECTED)
        for session in self._sessions[b.device_id]:
            for peer in list(session.connected_peers):
                if peer.device_id == a.device_id:
                    session._set_state(peer, SessionState.NOT_CONNECTED)
        # Tell browsers the peers are gone.
        self._lost_between(a.device_id, b.device_id)
        self._lost_between(b.device_id, a.device_id)

    def _lost_between(self, browser_device: str, advertiser_device: str) -> None:
        for browser in self._browsers[browser_device]:
            if not browser.active:
                continue
            for advertiser in self._advertisers[advertiser_device]:
                if advertiser.active and advertiser.service_type == browser.service_type:
                    browser.delegate.browser_lost_peer(browser, advertiser.peer)

    def session_disconnect_all(self, session: Session) -> None:
        """Explicit MCSession.disconnect(): drop every connection."""
        for peer in list(session.connected_peers):
            self.session_disconnect_all_with(session, peer)

    def session_disconnect_all_with(self, session: Session, peer: PeerID) -> None:
        """Drop one peer from a session (both directions)."""
        remote = self._find_session_for(peer, session.peer)
        session._set_state(peer, SessionState.NOT_CONNECTED)
        if remote is not None:
            remote._set_state(session.peer, SessionState.NOT_CONNECTED)
