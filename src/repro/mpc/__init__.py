"""Simulated Multipeer Connectivity (MPC).

Apple's MPC framework is closed source; the paper's ad hoc manager uses
only its public surface (paper §III-D): peer identities, a service
advertiser that broadcasts a small plain-text discovery dictionary, a
service browser that reports found/lost peers, and sessions that move
bytes over whichever transport (Bluetooth PAN / peer-to-peer WiFi /
infrastructure WiFi) links the two devices.  This package implements that
surface on top of :class:`repro.net.Medium` contacts:

* :class:`~repro.mpc.peer.PeerID` — a device-bound peer identity,
* :class:`~repro.mpc.advertiser.ServiceAdvertiser` — advertise + accept or
  decline invitations,
* :class:`~repro.mpc.browser.ServiceBrowser` — discovery callbacks,
* :class:`~repro.mpc.session.Session` — connected peers + reliable data
  transfer with bandwidth-accurate timing and mid-transfer link failure,
* :class:`~repro.mpc.framework.MpcFramework` — the hub wiring the above to
  the radio medium.

SOS is, per the paper, "the first middleware to leverage MPC to evaluate
multiple delay tolerant routing schemes" — so fidelity of this surface
(not of Apple's internals) is what the reproduction needs.
"""

from repro.mpc.errors import MpcError, NotConnectedError, SendError
from repro.mpc.peer import PeerID
from repro.mpc.session import Session, SessionState
from repro.mpc.advertiser import Invitation, ServiceAdvertiser
from repro.mpc.browser import ServiceBrowser
from repro.mpc.framework import MpcFramework

__all__ = [
    "MpcError",
    "NotConnectedError",
    "SendError",
    "PeerID",
    "Session",
    "SessionState",
    "Invitation",
    "ServiceAdvertiser",
    "ServiceBrowser",
    "MpcFramework",
]
