"""Structured trace recording.

The evaluation harness reconstructs everything the paper reports — delay
CDFs, per-subscription delivery ratios, hop counts, the Fig. 4b map overlay
— from the trace stream, never from protocol internals.  That mirrors how
the real deployment measured AlleyOop Social: by logging application-level
events on each phone and post-processing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """A single structured trace record.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    category:
        Coarse namespace, e.g. ``"contact"``, ``"message"``, ``"mobility"``.
    kind:
        Event name within the category, e.g. ``"delivered"``.
    data:
        Free-form payload; keys are event-kind specific and documented at
        the emit sites.
    """

    time: float
    category: str
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects :class:`TraceEvent` records and serves filtered views."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        self.enabled = True

    def emit(self, time: float, category: str, kind: str, **data: Any) -> None:
        """Record one event (no-op when disabled)."""
        if not self.enabled:
            return
        event = TraceEvent(time=time, category=category, kind=kind, data=data)
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` for every subsequently emitted event."""
        self._subscribers.append(callback)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def select(
        self,
        category: Optional[str] = None,
        kind: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[TraceEvent]:
        """Return events matching all provided filters, in time order."""
        out = []
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if kind is not None and event.kind != kind:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            out.append(event)
        return out

    def count(self, category: Optional[str] = None, kind: Optional[str] = None) -> int:
        return len(self.select(category=category, kind=kind))
