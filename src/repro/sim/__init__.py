"""Deterministic discrete-event simulation substrate.

Every other subsystem in this reproduction (radios, mobility, the SOS
middleware, the AlleyOop Social application) runs on top of this engine.
The engine is deliberately small and auditable:

* a binary-heap event queue ordered by ``(time, priority, sequence)``,
* a monotonically advancing simulation clock,
* named, independently seeded random streams (:class:`RandomStreams`) so
  that, e.g., mobility noise and message-creation times are decoupled and
  each experiment is reproducible from a single seed,
* a structured trace recorder (:class:`TraceRecorder`) used by the
  evaluation harness to reconstruct delays, hops and map overlays.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator(seed=7)
>>> fired = []
>>> sim.schedule_at(5.0, lambda: fired.append(sim.now))
<repro.sim.engine.Event ...>
>>> sim.run(until=10.0)
>>> fired
[5.0]
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.process import Process, Timer, PeriodicTimer
from repro.sim.randomness import RandomStreams
from repro.sim.trace import TraceRecorder, TraceEvent

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "Process",
    "Timer",
    "PeriodicTimer",
    "RandomStreams",
    "TraceRecorder",
    "TraceEvent",
]
