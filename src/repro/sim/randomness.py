"""Named, independently seeded random streams.

A simulation mixes many stochastic processes: waypoint selection, radio
noise, message creation times, user think-time.  If they all share one
``random.Random`` instance, adding a draw to one process perturbs every
other process and breaks run-to-run comparisons between protocols.  The
conventional fix (used by ns-3 and the ONE simulator alike) is one
independent substream per concern, derived deterministically from a master
seed and a stream name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of named :class:`random.Random` substreams.

    >>> streams = RandomStreams(42)
    >>> a = streams.get("mobility")
    >>> b = streams.get("mobility")
    >>> a is b
    True
    >>> streams.get("traffic") is a
    False
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def _derive_seed(self, name: str) -> int:
        material = f"{self.master_seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")

    def get(self, name: str) -> random.Random:
        """Return the substream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive_seed(name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child stream-family, e.g. one per simulated device."""
        return RandomStreams(self._derive_seed(name))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RandomStreams seed={self.master_seed} streams={sorted(self._streams)}>"
