"""Deterministic multi-process fan-out for pure per-item work.

One helper, shared by every parallel path in the harness (keypair-pool
prefetch, density-sweep point runner): fork a worker pool, map a pure
function over the items, and fall back to in-process execution whenever
forking is impossible — no ``fork`` start method on the platform, a
sandbox that forbids subprocesses, or running *inside* a pool worker
(daemonic processes cannot have children).

The contract callers must honour is that ``fn`` is a pure function of
its item — every item carries its own seed material and no result
depends on scheduling.  Under that contract the parallel run is
bit-for-bit the serial run, so the fallback is always safe.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")


def parallel_map(
    fn: Callable[[Item], Result], items: Sequence[Item], workers: int
) -> List[Result]:
    """``[fn(item) for item in items]``, across ``workers`` processes.

    Args:
        fn: A picklable module-level pure function.
        items: The work list; results come back in the same order.
        workers: Process budget; ``<= 1`` (or a single item) runs
            in-process without touching ``multiprocessing``.

    Returns:
        The mapped results, in item order.
    """
    if workers > 1 and len(items) > 1:
        try:
            import multiprocessing

            if multiprocessing.current_process().daemon:
                raise OSError("nested pool")  # workers cannot fork children
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(min(workers, len(items))) as pool:
                return pool.map(fn, items)
        except (ImportError, ValueError, OSError, AssertionError):
            pass  # no usable fork here: fall through to in-process
    return [fn(item) for item in items]
