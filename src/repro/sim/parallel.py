"""Deterministic multi-process fan-out: one-shot maps and a shard pool.

Two primitives, shared by every parallel path in the harness:

* :func:`parallel_map` — fork a worker pool, map a pure function over
  the items, tear the pool down.  Used by the keypair-pool prefetch and
  the density-sweep point runner.
* :class:`WorkerPool` — a *persistent* pool for per-tick task dispatch.
  Each worker process is forked once, builds private state from an init
  payload, and then answers one task per tick until closed.  The sharded
  contact-detection engine (``repro.net.medium_engines.sharded``) is the
  canonical client: shard workers hold per-shard mobility models across
  thousands of ticks, which a one-shot map cannot express.

Both fall back to in-process execution whenever forking is impossible —
no ``fork`` start method on the platform, a sandbox that forbids
subprocesses, or running *inside* a pool worker (daemonic processes
cannot have children).

The contract callers must honour is that worker functions are pure
functions of ``(state, task)`` (or of the item, for ``parallel_map``) —
every task carries its own seed material and no result depends on
scheduling.  Under that contract the parallel run is bit-for-bit the
serial run, so the fallback is always safe.  ``repro lint`` rule family
3 (``fork-unsafe``) statically enforces the shape: workers must be
module-level functions that do not close over locks, files, Simulators
or Mediums.

Failure surfacing: a worker exception is captured *with its original
traceback text* in the worker, shipped back, and re-raised in the
parent with the worker traceback attached as an exception note (or
wrapped in :class:`WorkerError` when the exception itself cannot cross
the process boundary).  Worker failures are never misread as "this
platform cannot fork" — only pool *construction* errors trigger the
serial fallback.
"""

from __future__ import annotations

import traceback
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")

#: Tag values of the (tag, ...) result envelopes workers send back.
_OK = "ok"
_ERR = "err"


class WorkerError(RuntimeError):
    """A worker raised an exception that could not itself be shipped
    back to the parent; carries the worker's original traceback text."""


def _capture(fn: Callable[..., Any], *args: Any) -> Tuple[Any, ...]:
    """Run ``fn`` and envelope the outcome.

    Success becomes ``("ok", result)``; failure becomes ``("err",
    exception_or_None, traceback_text)`` — the exception object rides
    along when it can be pickled, and the formatted traceback always
    does, so the parent can re-raise with full worker context either
    way.
    """
    try:
        return (_OK, fn(*args))
    except Exception as exc:  # repro: ignore[except-swallow] -- nothing vanishes: the exception and its formatted traceback are enveloped and re-raised in the parent by _unwrap.
        text = traceback.format_exc()
        try:
            import pickle

            pickle.dumps(exc)
        except Exception:  # repro: ignore[except-swallow] -- pickleability probe: an unpicklable exception degrades to its traceback text, which _unwrap re-raises as WorkerError.
            exc = None  # unpicklable: the text still crosses the boundary
        return (_ERR, exc, text)


def _unwrap(envelope: Tuple[Any, ...], where: str) -> Any:
    """Return the payload of an ``("ok", ...)`` envelope, or re-raise a
    worker failure with the original traceback text attached."""
    if envelope[0] == _OK:
        return envelope[1]
    _, exc, text = envelope
    if exc is not None:
        exc.add_note(f"[{where}] worker traceback:\n{text}")
        raise exc
    raise WorkerError(f"[{where}] worker raised:\n{text}")


def parallel_map(
    fn: Callable[[Item], Result], items: Sequence[Item], workers: int
) -> List[Result]:
    """``[fn(item) for item in items]``, across ``workers`` processes.

    Args:
        fn: A picklable module-level pure function.
        items: The work list; results come back in the same order.
        workers: Process budget; ``<= 1`` (or a single item) runs
            in-process without touching ``multiprocessing``.

    Returns:
        The mapped results, in item order.

    Raises:
        Whatever ``fn`` raised, re-raised in the parent with the worker
        traceback attached as a note (:class:`WorkerError` when the
        original exception cannot be pickled back).  Worker failures
        propagate — they are never silently retried in-process.
    """
    envelopes: Optional[List[Tuple[Any, ...]]] = None
    if workers > 1 and len(items) > 1:
        try:
            import multiprocessing

            if multiprocessing.current_process().daemon:
                raise OSError("nested pool")  # workers cannot fork children
            ctx = multiprocessing.get_context("fork")
            pool = ctx.Pool(min(workers, len(items)))
        except (ImportError, ValueError, OSError, AssertionError):
            pass  # no usable fork here: fall through to in-process
        else:
            # Worker exceptions come back as data envelopes, so nothing a
            # worker raises can be mistaken for a pool-construction error.
            with pool:
                envelopes = pool.starmap(_capture, [(fn, item) for item in items])
    if envelopes is None:
        envelopes = [_capture(fn, item) for item in items]
    return [_unwrap(envelope, f"parallel_map:{fn.__name__}") for envelope in envelopes]


def _pool_worker_main(conn, init_fn, payload) -> None:
    """Entry point of one persistent pool worker.

    Builds the worker's private state once, then serves ``(fn, task)``
    requests until the parent sends the ``None`` shutdown sentinel.
    Every reply is an envelope (see :func:`_capture`); an init failure
    is reported the same way and ends the process.
    """
    try:
        state_envelope = _capture(init_fn, payload)
        # Acknowledge init without shipping the (potentially huge) state
        # back: success sends an empty OK envelope, failure the usual
        # error envelope.
        conn.send((_OK, None) if state_envelope[0] == _OK else state_envelope)
        if state_envelope[0] != _OK:
            return
        state = state_envelope[1]
        while True:
            request = conn.recv()
            if request is None:
                return
            fn, task = request
            conn.send(_capture(fn, state, task))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        return  # parent went away: exit quietly
    finally:
        conn.close()


class WorkerPool:
    """A persistent pool of stateful workers for per-tick dispatch.

    Each of the ``len(init_payloads)`` workers runs
    ``state = init_fn(payload_k)`` once, then serves
    ``fn(state, task_k)`` calls round after round via :meth:`dispatch`.
    Processes are forked (start method ``"fork"``) so init payloads —
    which may hold large object graphs such as mobility models — are
    inherited by memory copy rather than pickled; per-round tasks and
    results do cross the pipe and should stay compact.

    Where forking is unavailable the pool degrades to *serial mode*:
    states are built in-process and dispatch runs the workers inline, in
    worker order.  Because workers are pure functions of
    ``(state, task)``, serial mode returns bit-identical results —
    callers cannot observe the difference except in wall-clock time
    (``forked`` says which mode is active).

    Workers are daemonic: an abandoned pool cannot outlive the parent
    process, and :meth:`close` is idempotent.
    """

    def __init__(
        self,
        init_fn: Callable[[Any], Any],
        init_payloads: Sequence[Any],
    ) -> None:
        if not init_payloads:
            raise ValueError("WorkerPool needs at least one worker payload")
        self.workers = len(init_payloads)
        self._connections: List[Any] = []
        self._processes: List[Any] = []
        self._states: Optional[List[Any]] = None  # serial mode only
        self._closed = False
        forked = False
        try:
            import multiprocessing

            if multiprocessing.current_process().daemon:
                raise OSError("nested pool")
            ctx = multiprocessing.get_context("fork")
            for payload in init_payloads:
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_pool_worker_main,
                    args=(child_conn, init_fn, payload),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._connections.append(parent_conn)
                self._processes.append(process)
            # Collect init acknowledgements; a failing init_fn surfaces
            # here with its worker traceback, before any dispatch.
            for index, conn in enumerate(self._connections):
                _unwrap(conn.recv(), f"WorkerPool[{index}]:{init_fn.__name__}")
            forked = True
        except (ImportError, ValueError, OSError, AssertionError):
            self._teardown_processes()
        except BaseException:
            # Anything else (a worker init failure surfaced by _unwrap,
            # an interrupt) propagates — but never with live processes.
            self._teardown_processes()
            raise
        if not forked:
            # Serial mode: states live in-process.  Sharing the payload
            # object graph with the caller is safe precisely because no
            # second copy exists — there is nothing to diverge from.
            self._states = [init_fn(payload) for payload in init_payloads]
        self.forked = forked

    def dispatch(
        self, fn: Callable[[Any, Any], Any], tasks: Sequence[Any]
    ) -> List[Any]:
        """Run ``fn(state_k, tasks[k])`` on every worker; results in
        worker order.  ``fn`` must be a picklable module-level pure
        function (rule family 3 checks call sites statically)."""
        if self._closed:
            raise RuntimeError("dispatch on a closed WorkerPool")
        if len(tasks) != self.workers:
            raise ValueError(
                f"need exactly {self.workers} tasks (one per worker), got {len(tasks)}"
            )
        if self._states is not None:
            return [
                _unwrap(_capture(fn, state, task), f"WorkerPool[serial]:{fn.__name__}")
                for state, task in zip(self._states, tasks)
            ]
        for conn, task in zip(self._connections, tasks):
            conn.send((fn, task))
        # Drain every pipe before unwrapping: raising on the first failed
        # envelope with later ones unread would leave the pipes out of
        # lockstep for the next round.
        envelopes = [conn.recv() for conn in self._connections]
        return [
            _unwrap(envelope, f"WorkerPool[{index}]:{fn.__name__}")
            for index, envelope in enumerate(envelopes)
        ]

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._connections:
            try:
                conn.send(None)
            except (OSError, ValueError):
                pass  # worker already gone
        self._teardown_processes()
        self._states = None

    def _teardown_processes(self) -> None:
        for conn in self._connections:
            try:
                conn.close()
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5.0)
        self._connections = []
        self._processes = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:  # repro: ignore[except-swallow] -- finaliser: raising during interpreter teardown would mask the real error; workers are daemonic and die with the parent anyway.
            pass
