"""Timer and process conveniences layered on the raw event heap.

Most model code wants one of three shapes:

* a one-shot :class:`Timer` that can be restarted/cancelled (connection
  timeouts, advertisement refreshes),
* a :class:`PeriodicTimer` that fires on a fixed or jittered period
  (discovery beacons, mobility position updates),
* a long-lived :class:`Process` driving a generator that yields delays
  (user behaviour scripts: wake, commute, post, sleep).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.engine import Event, Simulator


class Timer:
    """A restartable one-shot timer."""

    def __init__(self, sim: Simulator, callback: Callable[[], Any], name: str = "timer") -> None:
        self._sim = sim
        self._callback = callback
        self._name = name
        self._event: Optional[Event] = None

    @property
    def pending(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire after ``delay`` seconds."""
        self.cancel()
        self._event = self._sim.schedule_in(delay, self._fire, name=self._name)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTimer:
    """Fires ``callback`` every ``period`` seconds, with optional jitter.

    Jitter desynchronises large populations of devices — exactly what
    happens with real beacon timers — and is drawn from the simulator's
    ``"periodic:<name>"`` random stream so it is reproducible.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        jitter: float = 0.0,
        name: str = "periodic",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self._sim = sim
        self.period = float(period)
        self.jitter = float(jitter)
        self._callback = callback
        self._name = name
        self._event: Optional[Event] = None
        self._rng = sim.streams.get(f"periodic:{name}")
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self, initial_delay: Optional[float] = None) -> None:
        if self._running:
            return
        self._running = True
        delay = self._next_delay() if initial_delay is None else initial_delay
        self._event = self._sim.schedule_in(delay, self._fire, name=self._name)

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _next_delay(self) -> float:
        if self.jitter <= 0:
            return self.period
        return max(0.0, self.period + self._rng.uniform(-self.jitter, self.jitter))

    def _fire(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:
            self._event = self._sim.schedule_in(self._next_delay(), self._fire, name=self._name)


class Process:
    """Drives a generator that yields non-negative delays (seconds).

    The generator is advanced once per yielded delay; returning (or raising
    ``StopIteration``) ends the process.  This gives user-behaviour scripts
    a linear, readable shape::

        def day(self):
            yield self.sleep_until_morning()
            self.post("good morning")
            yield 3600.0
            ...
    """

    def __init__(self, sim: Simulator, generator: Generator[float, None, None], name: str = "process") -> None:
        self._sim = sim
        self._generator = generator
        self._name = name
        self._event: Optional[Event] = None
        self.finished = False

    def start(self, delay: float = 0.0) -> None:
        self._event = self._sim.schedule_in(delay, self._step, name=self._name)

    def cancel(self) -> None:
        self.finished = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _step(self) -> None:
        if self.finished:
            return
        try:
            delay = next(self._generator)
        except StopIteration:
            self.finished = True
            self._event = None
            return
        if delay is None or delay < 0:
            raise ValueError(f"process {self._name!r} yielded invalid delay {delay!r}")
        self._event = self._sim.schedule_in(float(delay), self._step, name=self._name)
