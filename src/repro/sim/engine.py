"""The discrete-event simulation engine.

The engine is a classic event-heap design: callbacks are scheduled at
absolute simulation times and executed in ``(time, priority, sequence)``
order.  Ties on time are broken first by an integer priority (lower runs
earlier) and then by insertion order, which makes runs fully deterministic
for a fixed seed and schedule.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.randomness import RandomStreams
from repro.sim.trace import TraceRecorder


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule_at` /
    :meth:`Simulator.schedule_in` and can be cancelled.  Cancellation is
    lazy: the heap entry stays in place and is skipped when popped — the
    simulator compacts the heap when cancelled entries pile up, so
    timer-heavy scenarios (restartable timeouts cancelled on every
    contact) cannot grow the queue without bound over long runs.
    """

    __slots__ = (
        "time", "priority", "seq", "callback", "args", "cancelled", "name",
        "owner", "_on_cancel",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        name: str = "",
        owner: Optional[Any] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.name = name or getattr(callback, "__name__", "event")
        self.owner = owner
        self._on_cancel: Optional[Callable[[], None]] = None

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<repro.sim.engine.Event {self.name!r} t={self.time:.3f} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the simulator's named random streams.  Two
        simulators built with the same seed and the same schedule produce
        byte-identical traces.
    start_time:
        Simulation epoch in seconds.  Experiments use 0.0 and express the
        7-day field study as ``until=7 * 86400``.
    """

    #: Compaction trigger: rebuild the heap once at least this many
    #: cancelled entries linger *and* they outnumber the live ones.
    COMPACT_MIN_CANCELLED = 1024

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._cancelled_in_heap = 0
        self.streams = RandomStreams(seed)
        self.trace = TraceRecorder()
        self._step_hooks: List[Callable[[float], None]] = []

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        name: str = "",
        owner: Optional[Any] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``.

        ``owner`` tags the event for bulk cancellation via
        :meth:`cancel_owned` (used by the fault injector to quiesce every
        process it scheduled in one call); it has no effect on ordering.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}, now is {self._now:.6f}"
            )
        event = Event(float(time), priority, self._seq, callback, args, name, owner)
        event._on_cancel = self._note_cancelled
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel_owned(self, owner: Any) -> int:
        """Cancel every pending event tagged with ``owner`` (identity
        comparison).  Returns the number of events cancelled."""
        count = 0
        for event in self._heap:
            if not event.cancelled and event.owner is owner:
                event.cancel()
                count += 1
        return count

    def _note_cancelled(self) -> None:
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 >= len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant.

        O(n) on the surviving events; ``(time, priority, seq)`` keys are
        unique, so re-heapifying cannot reorder execution."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    def schedule_in(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        name: str = "",
        owner: Optional[Any] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(
            self._now + delay, callback, *args, priority=priority, name=name, owner=owner
        )

    def add_step_hook(self, hook: Callable[[float], None]) -> None:
        """Register ``hook(now)`` to run after every executed event.

        Step hooks are used by the metrics collector to observe the
        simulation without entangling measurement code with the model.
        """
        self._step_hooks.append(hook)

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` have executed.  Returns the number of events run.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return even if the queue drained earlier, so measurement windows
        have well-defined ends.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._heap and not self._stopped:
                if max_events is not None and executed >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.callback(*event.args)
                executed += 1
                for hook in self._step_hooks:
                    hook(self._now)
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = float(until)
        return executed

    def run_until_empty(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``)."""
        return self.run(max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.3f} pending={self.pending_events}>"
