"""Command-line interface.

``python -m repro <command>`` drives the evaluation harness without
writing any code:

* ``study``    — run the Gainesville field-study reconstruction and print
  the paper-vs-measured report (plus optional map/CDF detail),
* ``compare``  — run every routing protocol on the identical deployment,
* ``density``  — the higher-density sweep the paper calls for,
* ``protocols`` — list available routing schemes,
* ``graph-stats`` — degree statistics of a generated follow graph (sweep
  sanity checks before paying for a large run),
* ``lint`` — the determinism / simulation-hygiene static-analysis suite
  (``--strict`` is the CI lane).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.routing.registry import RoutingRegistry
from repro.faults.plan import FAULT_PRESET_NAMES
from repro.pki.provisioning import PROVISIONING_MODES
from repro.experiments import (
    DensitySweep,
    GainesvilleStudy,
    ProtocolComparison,
    ScenarioConfig,
)
from repro.social.generators import SOCIAL_GRAPH_KINDS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2017, help="master seed")
    parser.add_argument("--days", type=int, default=None, help="study length in days")
    parser.add_argument("--posts", type=int, default=None, help="total posts to schedule")
    parser.add_argument("--users", type=int, default=None, help="population size")
    parser.add_argument(
        "--protocol", default=None, help="routing protocol (default: interest)"
    )
    parser.add_argument(
        "--legacy-packet-crypto",
        action="store_true",
        help="use the per-packet hybrid-RSA reference path instead of the "
        "per-link secure-session layer (same traces; for benchmarking)",
    )
    parser.add_argument(
        "--provisioning",
        choices=PROVISIONING_MODES,
        default=None,
        help="identity provisioning strategy: eager on-device keygen at "
        "sign-up (default, the reference oracle), pooled deterministic "
        "keypair cache, or lazy first-use materialisation (same traces; "
        "pooled/lazy make large-N secured builds tractable)",
    )
    parser.add_argument(
        "--key-cache",
        metavar="DIR",
        default=None,
        help="on-disk keypair-pool directory for --provisioning pooled/lazy "
        "(default: $REPRO_KEY_CACHE, else memory-only)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes: parallel keypair prefetch for pooled "
        "provisioning, and parallel sweep points for the density command",
    )
    parser.add_argument(
        "--social-graph",
        choices=SOCIAL_GRAPH_KINDS,
        default=None,
        help="follow-graph generator: auto (figure4a at N=10, hub_and_cluster "
        "otherwise), or a sparse family (degree_bounded, powerlaw_cluster) "
        "whose per-user degree stays constant as N grows",
    )
    parser.add_argument(
        "--per-edge-bootstrap",
        action="store_true",
        help="wire day-0 follows one cloud round per edge (the reference "
        "oracle) instead of the bulk per-user batch (same traces; for "
        "benchmarking)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault plan: a preset "
        f"({', '.join(FAULT_PRESET_NAMES)}), optionally followed by "
        "comma-separated key=value overrides, or a bare override list "
        '(e.g. "mild,frame_drop_prob=0.2"); default: none',
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for the fault-injection DRBG (default: derived from "
        "--seed); same plan + same fault seed = identical traces",
    )


def _config_from(args: argparse.Namespace) -> ScenarioConfig:
    kwargs = {"seed": args.seed}
    if args.days is not None:
        kwargs["duration_days"] = args.days
    if args.posts is not None:
        kwargs["total_posts"] = args.posts
    if args.users is not None:
        kwargs["num_users"] = args.users
    if args.protocol is not None:
        kwargs["routing_protocol"] = args.protocol
    if args.legacy_packet_crypto:
        kwargs["session_crypto"] = False
    if args.provisioning is not None:
        kwargs["provisioning"] = args.provisioning
    if args.key_cache is not None:
        kwargs["key_cache_dir"] = args.key_cache
    if args.workers != 1:
        kwargs["provisioning_workers"] = args.workers
    if args.social_graph is not None:
        kwargs["social_graph"] = args.social_graph
    if args.per_edge_bootstrap:
        kwargs["bulk_bootstrap"] = False
    if args.faults is not None:
        kwargs["faults"] = args.faults
    if args.fault_seed is not None:
        kwargs["fault_seed"] = args.fault_seed
    return ScenarioConfig(**kwargs)


def cmd_study(args: argparse.Namespace) -> int:
    config = _config_from(args)
    print(
        f"running: {config.num_users} users, {config.duration_days} days, "
        f"{config.total_posts} posts, protocol={config.routing_protocol!r}",
        file=sys.stderr,
    )
    result = GainesvilleStudy(config).run()
    print(result.report())
    if result.collector.fault_counts or result.collector.cloud_counts:
        injected = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(result.collector.fault_counts.items())
        ) or "(none)"
        recovery = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(result.collector.cloud_counts.items())
        ) or "(none)"
        print()
        print(f"injected faults: {injected}")
        print(f"sync resilience: {recovery}")
    if args.map:
        print()
        print("Fig. 4b overlay (b=creation, r=dissemination, x=both):")
        print(result.overlay.ascii_map())
    if args.cdf:
        print()
        print("delay CDF (hours, F(all), F(1-hop)):")
        for h, f_all, f_one in result.delay.curve_hours():
            print(f"  {h:>5.0f}  {f_all:.3f}  {f_one:.3f}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    config = _config_from(args)
    protocols = tuple(args.only.split(",")) if args.only else ProtocolComparison.DEFAULT_PROTOCOLS
    comparison = ProtocolComparison(base_config=config, protocols=protocols)
    comparison.run()
    print(comparison.report())
    return 0


def cmd_density(args: argparse.Namespace) -> int:
    config = _config_from(args)
    populations = tuple(int(p) for p in args.populations.split(","))
    sweep = DensitySweep(
        base_config=config,
        populations=populations,
        medium_batched=not args.per_device_medium,
        workers=args.workers,
    )
    sweep.run()
    print(sweep.report())
    return 0


def cmd_protocols(args: argparse.Namespace) -> int:
    for name in RoutingRegistry.with_builtins().names():
        print(name)
    return 0


def cmd_graph_stats(args: argparse.Namespace) -> int:
    """Sanity-check a generator before committing to a large sweep:
    node/edge counts, density, reciprocity and the degree histogram of
    exactly the graph a study with this seed/population would build."""
    from repro.metrics.report import format_table
    from repro.sim.randomness import RandomStreams
    from repro.social import metrics as social_metrics
    from repro.social.generators import make_social_graph, resolve_social_graph_kind

    kind = args.social_graph or "auto"
    resolved = resolve_social_graph_kind(kind, args.users)
    rng = RandomStreams(args.seed).get("social")
    graph = make_social_graph(kind, args.users, rng)
    summary = social_metrics.degree_summary(graph)
    print(
        format_table(
            f"social graph: {resolved} (N={args.users}, seed={args.seed})",
            ("quantity", "value"),
            [
                ("nodes", graph.node_count),
                ("directed edges", graph.edge_count),
                ("directed density", f"{social_metrics.density_directed(graph):.4f}"),
                ("reciprocity", f"{social_metrics.reciprocity(graph):.3f}"),
                ("weakly connected", graph.is_weakly_connected()),
                ("out-degree min/mean/max",
                 f"{summary['out_min']:.0f} / {summary['out_mean']:.1f} / {summary['out_max']:.0f}"),
                ("in-degree min/mean/max",
                 f"{summary['in_min']:.0f} / {summary['in_mean']:.1f} / {summary['in_max']:.0f}"),
            ],
        )
    )
    histogram = social_metrics.degree_histogram(graph, direction=args.direction)
    max_degree = max(histogram)
    bucket = max(1, (max_degree + 1) // 16)
    buckets: dict = {}
    for degree, count in histogram.items():
        buckets[degree // bucket] = buckets.get(degree // bucket, 0) + count
    peak = max(buckets.values())
    print()
    print(f"{args.direction}-degree histogram (bucket width {bucket}):")
    for index in sorted(buckets):
        lo, hi = index * bucket, index * bucket + bucket - 1
        label = f"{lo}" if bucket == 1 else f"{lo}-{hi}"
        bar = "#" * max(1, round(40 * buckets[index] / peak))
        print(f"  {label:>9}  {buckets[index]:>6}  {bar}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis for determinism and simulation hygiene.

    Exit 0 = clean, 1 = findings, 2 = bad invocation.  ``--strict``
    (the CI lane) additionally rejects suppressions with no
    justification, unknown rule names, and stale ignores.
    """
    from repro.analysis.runner import list_rules, run_lint

    if args.list_rules:
        return list_rules()
    return run_lint(
        args.paths,
        strict=args.strict,
        output_format=args.format,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOS middleware / AlleyOop Social reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    study = sub.add_parser("study", help="run the Gainesville field-study reconstruction")
    _add_common(study)
    study.add_argument("--map", action="store_true", help="print the Fig. 4b ASCII map")
    study.add_argument("--cdf", action="store_true", help="print the Fig. 4c CDF series")
    study.set_defaults(func=cmd_study)

    compare = sub.add_parser("compare", help="compare routing protocols on one deployment")
    _add_common(compare)
    compare.add_argument(
        "--only", default=None, help="comma-separated protocol names (default: all)"
    )
    compare.set_defaults(func=cmd_compare)

    density = sub.add_parser("density", help="population-density sweep")
    _add_common(density)
    density.add_argument(
        "--populations", default="10,16,24", help="comma-separated population sizes"
    )
    density.add_argument(
        "--per-device-medium",
        action="store_true",
        help="use the per-device contact-detection reference path "
        "(same contacts; for benchmarking the batched engine)",
    )
    density.set_defaults(func=cmd_density)

    protocols = sub.add_parser("protocols", help="list available routing schemes")
    protocols.set_defaults(func=cmd_protocols)

    graph_stats = sub.add_parser(
        "graph-stats",
        help="node/edge counts and degree histogram of a generated follow "
        "graph (sweep sanity check; also scripts/graph_stats.py)",
    )
    graph_stats.add_argument("--seed", type=int, default=2017, help="master seed")
    graph_stats.add_argument("--users", type=int, default=10, help="population size")
    graph_stats.add_argument(
        "--social-graph",
        choices=SOCIAL_GRAPH_KINDS,
        default=None,
        help="generator family (default: auto)",
    )
    graph_stats.add_argument(
        "--direction",
        choices=("out", "in", "total"),
        default="out",
        help="which degree to histogram (default: out)",
    )
    graph_stats.set_defaults(func=cmd_graph_stats)

    lint = sub.add_parser(
        "lint",
        help="determinism & simulation-hygiene static analysis "
        "(nondeterminism hazards, trace-event registry, fork safety, "
        "exception hygiene, seeded-stream discipline)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint, repo-relative (default: src)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="also fail on suppression-hygiene findings (no justification, "
        "unknown rule, stale ignore); the CI lint lane runs this",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule name and description, then exit",
    )
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
