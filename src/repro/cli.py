"""Command-line interface.

``python -m repro <command>`` drives the evaluation harness without
writing any code:

* ``study``    — run the Gainesville field-study reconstruction and print
  the paper-vs-measured report (plus optional map/CDF detail),
* ``compare``  — run every routing protocol on the identical deployment,
* ``density``  — the higher-density sweep the paper calls for,
* ``protocols`` — list available routing schemes,
* ``graph-stats`` — degree statistics of a generated follow graph (sweep
  sanity checks before paying for a large run),
* ``lint`` — the determinism / simulation-hygiene static-analysis suite
  (``--strict`` is the CI lane),
* ``bench`` — benchmark orchestration: ``run`` a declarative suite into
  a ``BENCH_<suite>.json`` trajectory artifact (resumable via an
  on-disk journal), ``report`` the cross-PR trend table, ``check`` a
  new artifact against a committed baseline (the regression gate), and
  ``list`` the available suites.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.routing.registry import RoutingRegistry
from repro.faults.plan import FAULT_PRESET_NAMES
from repro.pki.provisioning import PROVISIONING_MODES
from repro.experiments import (
    DensitySweep,
    GainesvilleStudy,
    ProtocolComparison,
    ScenarioConfig,
)
from repro.social.generators import SOCIAL_GRAPH_KINDS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2017, help="master seed")
    parser.add_argument("--days", type=int, default=None, help="study length in days")
    parser.add_argument("--posts", type=int, default=None, help="total posts to schedule")
    parser.add_argument("--users", type=int, default=None, help="population size")
    parser.add_argument(
        "--protocol", default=None, help="routing protocol (default: interest)"
    )
    parser.add_argument(
        "--legacy-packet-crypto",
        action="store_true",
        help="use the per-packet hybrid-RSA reference path instead of the "
        "per-link secure-session layer (same traces; for benchmarking)",
    )
    parser.add_argument(
        "--provisioning",
        choices=PROVISIONING_MODES,
        default=None,
        help="identity provisioning strategy: eager on-device keygen at "
        "sign-up (default, the reference oracle), pooled deterministic "
        "keypair cache, or lazy first-use materialisation (same traces; "
        "pooled/lazy make large-N secured builds tractable)",
    )
    parser.add_argument(
        "--key-cache",
        metavar="DIR",
        default=None,
        help="on-disk keypair-pool directory for --provisioning pooled/lazy "
        "(default: $REPRO_KEY_CACHE, else memory-only)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes: parallel keypair prefetch for pooled "
        "provisioning, and parallel sweep points for the density command",
    )
    parser.add_argument(
        "--social-graph",
        choices=SOCIAL_GRAPH_KINDS,
        default=None,
        help="follow-graph generator: auto (figure4a at N=10, hub_and_cluster "
        "otherwise), or a sparse family (degree_bounded, powerlaw_cluster) "
        "whose per-user degree stays constant as N grows",
    )
    parser.add_argument(
        "--medium-shards",
        type=int,
        default=None,
        metavar="N",
        help="run contact detection on the sharded cross-process engine "
        "with N worker processes (spatial bands + halo exchange; same "
        "traces as the single-process engines); default: single-process",
    )
    parser.add_argument(
        "--medium-halo",
        type=float,
        default=None,
        metavar="M",
        help="minimum sharded-engine ghost-zone width in metres (default: "
        "the sweep radius; values below it have no effect)",
    )
    parser.add_argument(
        "--per-edge-bootstrap",
        action="store_true",
        help="wire day-0 follows one cloud round per edge (the reference "
        "oracle) instead of the bulk per-user batch (same traces; for "
        "benchmarking)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault plan: a preset "
        f"({', '.join(FAULT_PRESET_NAMES)}), optionally followed by "
        "comma-separated key=value overrides, or a bare override list "
        '(e.g. "mild,frame_drop_prob=0.2"); default: none',
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for the fault-injection DRBG (default: derived from "
        "--seed); same plan + same fault seed = identical traces",
    )


def _config_from(args: argparse.Namespace) -> ScenarioConfig:
    kwargs = {"seed": args.seed}
    if args.days is not None:
        kwargs["duration_days"] = args.days
    if args.posts is not None:
        kwargs["total_posts"] = args.posts
    if args.users is not None:
        kwargs["num_users"] = args.users
    if args.protocol is not None:
        kwargs["routing_protocol"] = args.protocol
    if args.legacy_packet_crypto:
        kwargs["session_crypto"] = False
    if args.provisioning is not None:
        kwargs["provisioning"] = args.provisioning
    if args.key_cache is not None:
        kwargs["key_cache_dir"] = args.key_cache
    if args.workers != 1:
        kwargs["provisioning_workers"] = args.workers
    if args.social_graph is not None:
        kwargs["social_graph"] = args.social_graph
    if args.medium_shards is not None:
        kwargs["medium_shards"] = args.medium_shards
    if args.medium_halo is not None:
        kwargs["medium_halo_m"] = args.medium_halo
    if args.per_edge_bootstrap:
        kwargs["bulk_bootstrap"] = False
    if args.faults is not None:
        kwargs["faults"] = args.faults
    if args.fault_seed is not None:
        kwargs["fault_seed"] = args.fault_seed
    return ScenarioConfig(**kwargs)


def cmd_study(args: argparse.Namespace) -> int:
    config = _config_from(args)
    print(
        f"running: {config.num_users} users, {config.duration_days} days, "
        f"{config.total_posts} posts, protocol={config.routing_protocol!r}",
        file=sys.stderr,
    )
    result = GainesvilleStudy(config).run()
    print(result.report())
    if result.collector.fault_counts or result.collector.cloud_counts:
        injected = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(result.collector.fault_counts.items())
        ) or "(none)"
        recovery = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(result.collector.cloud_counts.items())
        ) or "(none)"
        print()
        print(f"injected faults: {injected}")
        print(f"sync resilience: {recovery}")
    if args.map:
        print()
        print("Fig. 4b overlay (b=creation, r=dissemination, x=both):")
        print(result.overlay.ascii_map())
    if args.cdf:
        print()
        print("delay CDF (hours, F(all), F(1-hop)):")
        for h, f_all, f_one in result.delay.curve_hours():
            print(f"  {h:>5.0f}  {f_all:.3f}  {f_one:.3f}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    config = _config_from(args)
    protocols = tuple(args.only.split(",")) if args.only else ProtocolComparison.DEFAULT_PROTOCOLS
    comparison = ProtocolComparison(base_config=config, protocols=protocols)
    comparison.run()
    print(comparison.report())
    return 0


def cmd_density(args: argparse.Namespace) -> int:
    config = _config_from(args)
    populations = tuple(int(p) for p in args.populations.split(","))
    sweep = DensitySweep(
        base_config=config,
        populations=populations,
        medium_batched=not args.per_device_medium,
        medium_shards=config.medium_shards,
        workers=args.workers,
    )
    sweep.run()
    print(sweep.report())
    return 0


def cmd_protocols(args: argparse.Namespace) -> int:
    for name in RoutingRegistry.with_builtins().names():
        print(name)
    return 0


def cmd_graph_stats(args: argparse.Namespace) -> int:
    """Sanity-check a generator before committing to a large sweep:
    node/edge counts, density, reciprocity and the degree histogram of
    exactly the graph a study with this seed/population would build."""
    from repro.metrics.report import format_table
    from repro.sim.randomness import RandomStreams
    from repro.social import metrics as social_metrics
    from repro.social.generators import make_social_graph, resolve_social_graph_kind

    kind = args.social_graph or "auto"
    resolved = resolve_social_graph_kind(kind, args.users)
    rng = RandomStreams(args.seed).get("social")
    graph = make_social_graph(kind, args.users, rng)
    summary = social_metrics.degree_summary(graph)
    print(
        format_table(
            f"social graph: {resolved} (N={args.users}, seed={args.seed})",
            ("quantity", "value"),
            [
                ("nodes", graph.node_count),
                ("directed edges", graph.edge_count),
                ("directed density", f"{social_metrics.density_directed(graph):.4f}"),
                ("reciprocity", f"{social_metrics.reciprocity(graph):.3f}"),
                ("weakly connected", graph.is_weakly_connected()),
                ("out-degree min/mean/max",
                 f"{summary['out_min']:.0f} / {summary['out_mean']:.1f} / {summary['out_max']:.0f}"),
                ("in-degree min/mean/max",
                 f"{summary['in_min']:.0f} / {summary['in_mean']:.1f} / {summary['in_max']:.0f}"),
            ],
        )
    )
    histogram = social_metrics.degree_histogram(graph, direction=args.direction)
    max_degree = max(histogram)
    bucket = max(1, (max_degree + 1) // 16)
    buckets: dict = {}
    for degree, count in histogram.items():
        buckets[degree // bucket] = buckets.get(degree // bucket, 0) + count
    peak = max(buckets.values())
    print()
    print(f"{args.direction}-degree histogram (bucket width {bucket}):")
    for index in sorted(buckets):
        lo, hi = index * bucket, index * bucket + bucket - 1
        label = f"{lo}" if bucket == 1 else f"{lo}-{hi}"
        bar = "#" * max(1, round(40 * buckets[index] / peak))
        print(f"  {label:>9}  {buckets[index]:>6}  {bar}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis for determinism and simulation hygiene.

    Exit 0 = clean, 1 = findings, 2 = bad invocation.  ``--strict``
    (the CI lane) additionally rejects suppressions with no
    justification, unknown rule names, and stale ignores.
    """
    from repro.analysis.runner import list_rules, run_lint

    if args.list_rules:
        return list_rules()
    return run_lint(
        args.paths,
        strict=args.strict,
        output_format=args.format,
    )


def cmd_bench_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench.runner import BenchRunError, run_suite
    from repro.bench.suites import SuiteError, load_suite

    try:
        suite = load_suite(
            args.suite, Path(args.suite_file) if args.suite_file else None
        )
    except SuiteError as exc:
        print(f"bench run: {exc}", file=sys.stderr)
        return 2
    journal_dir = Path(args.journal) if args.journal else Path(".bench") / suite.name
    out_path = Path(args.out) if args.out else None
    try:
        run_suite(
            suite,
            journal_dir=journal_dir,
            out_path=out_path,
            fresh=args.fresh,
            backend=args.sampler,
            log=lambda message: print(message, file=sys.stderr),
        )
    except (BenchRunError, SuiteError) as exc:
        print(f"bench run: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_bench_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench.report import consolidate, render_json, render_markdown

    suites = args.suites.split(",") if args.suites else None
    consolidated = consolidate(Path(args.dir), pattern=args.glob, suites=suites)
    rendered = (
        render_json(consolidated)
        if args.format == "json"
        else render_markdown(consolidated)
    )
    if args.out:
        Path(args.out).write_text(rendered, encoding="utf-8")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    return 0


def cmd_bench_check(args: argparse.Namespace) -> int:
    from repro.bench.check import compare_artifacts
    from repro.bench.schema import BenchSchemaError, load_artifact

    try:
        current = load_artifact(args.current)
        baseline = load_artifact(args.against)
    except BenchSchemaError as exc:
        print(f"bench check: {exc}", file=sys.stderr)
        return 2
    report = compare_artifacts(
        current,
        baseline,
        metric=args.metric,
        threshold=args.threshold,
        min_seconds=args.min_seconds,
        check_traces=not args.no_trace_check,
    )
    print(report.render())
    return 0 if report.ok else 1


def cmd_bench_list(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench.suites import SuiteError, builtin_suite_names, load_suite

    if args.suite_file:
        try:
            suites = [load_suite("", Path(args.suite_file))]
        except SuiteError as exc:
            print(f"bench list: {exc}", file=sys.stderr)
            return 2
    else:
        suites = [load_suite(name) for name in builtin_suite_names()]
    for suite in suites:
        points = sum(run.repetitions for run in suite.runs)
        print(f"{suite.name}: {suite.description} ({points} points)")
        for run in suite.runs:
            overrides = ", ".join(
                f"{key}={value}" for key, value in sorted(run.config.items())
            ) or "(defaults)"
            print(f"  {run.name} x{run.repetitions}: {overrides}")
    return 0


def _add_bench_parsers(sub) -> None:
    bench = sub.add_parser(
        "bench",
        help="benchmark orchestration: run declarative suites into "
        "BENCH_<suite>.json artifacts, report the cross-PR trajectory, "
        "gate against a baseline",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    run = bench_sub.add_parser(
        "run", help="execute a suite resumably and emit BENCH_<suite>.json"
    )
    run.add_argument("--suite", default="smoke", help="suite name (see 'bench list')")
    run.add_argument(
        "--suite-file",
        default=None,
        metavar="JSON",
        help="load the suite definition from a JSON file instead of the "
        "built-in registry",
    )
    run.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="artifact destination (default: BENCH_<suite>.json in the "
        "current directory)",
    )
    run.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="journal directory for resume (default: .bench/<suite>); "
        "completed points found here are skipped",
    )
    run.add_argument(
        "--fresh",
        action="store_true",
        help="discard the journal and re-run every point",
    )
    run.add_argument(
        "--sampler",
        choices=("psutil", "proc", "resource", "none"),
        default=None,
        help="pin the memory sampling backend (default: auto-detect)",
    )
    run.set_defaults(func=cmd_bench_run)

    report = bench_sub.add_parser(
        "report", help="consolidate BENCH_*.json files into a trend table"
    )
    report.add_argument(
        "--dir", default=".", help="directory holding the artifacts (default: .)"
    )
    report.add_argument(
        "--glob", default="BENCH_*.json", help="artifact filename pattern"
    )
    report.add_argument(
        "--suites",
        default=None,
        help="comma-separated suite names to include; named suites with "
        "no artifact are reported as missing",
    )
    report.add_argument(
        "--format", choices=("md", "json"), default="md", help="output format"
    )
    report.add_argument(
        "--out", default=None, metavar="PATH", help="write to a file instead of stdout"
    )
    report.set_defaults(func=cmd_bench_report)

    check = bench_sub.add_parser(
        "check", help="regression gate: compare an artifact against a baseline"
    )
    check.add_argument("current", help="the freshly produced BENCH_*.json")
    check.add_argument(
        "--against", required=True, metavar="BASELINE", help="the baseline artifact"
    )
    check.add_argument(
        "--metric",
        default="cpu_s",
        help="timing metric to judge (default: cpu_s — wall_s is noisier)",
    )
    check.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="allowed relative slowdown (0.5 = fail beyond 1.5x; default 0.5)",
    )
    check.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        help="skip points under this duration in both artifacts (noise floor)",
    )
    check.add_argument(
        "--no-trace-check",
        action="store_true",
        help="skip the trace-sha256 equality check (only while deliberately "
        "re-baselining behaviour)",
    )
    check.set_defaults(func=cmd_bench_check)

    listing = bench_sub.add_parser("list", help="list suites and their points")
    listing.add_argument(
        "--suite-file", default=None, metavar="JSON", help="describe a suite file"
    )
    listing.set_defaults(func=cmd_bench_list)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOS middleware / AlleyOop Social reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    study = sub.add_parser("study", help="run the Gainesville field-study reconstruction")
    _add_common(study)
    study.add_argument("--map", action="store_true", help="print the Fig. 4b ASCII map")
    study.add_argument("--cdf", action="store_true", help="print the Fig. 4c CDF series")
    study.set_defaults(func=cmd_study)

    compare = sub.add_parser("compare", help="compare routing protocols on one deployment")
    _add_common(compare)
    compare.add_argument(
        "--only", default=None, help="comma-separated protocol names (default: all)"
    )
    compare.set_defaults(func=cmd_compare)

    density = sub.add_parser("density", help="population-density sweep")
    _add_common(density)
    density.add_argument(
        "--populations", default="10,16,24", help="comma-separated population sizes"
    )
    density.add_argument(
        "--per-device-medium",
        action="store_true",
        help="use the per-device contact-detection reference path "
        "(same contacts; for benchmarking the batched engine)",
    )
    density.set_defaults(func=cmd_density)

    protocols = sub.add_parser("protocols", help="list available routing schemes")
    protocols.set_defaults(func=cmd_protocols)

    graph_stats = sub.add_parser(
        "graph-stats",
        help="node/edge counts and degree histogram of a generated follow "
        "graph (sweep sanity check; also scripts/graph_stats.py)",
    )
    graph_stats.add_argument("--seed", type=int, default=2017, help="master seed")
    graph_stats.add_argument("--users", type=int, default=10, help="population size")
    graph_stats.add_argument(
        "--social-graph",
        choices=SOCIAL_GRAPH_KINDS,
        default=None,
        help="generator family (default: auto)",
    )
    graph_stats.add_argument(
        "--direction",
        choices=("out", "in", "total"),
        default="out",
        help="which degree to histogram (default: out)",
    )
    graph_stats.set_defaults(func=cmd_graph_stats)

    lint = sub.add_parser(
        "lint",
        help="determinism & simulation-hygiene static analysis "
        "(nondeterminism hazards, trace-event registry, fork safety, "
        "exception hygiene, seeded-stream discipline)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint, repo-relative (default: src)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="also fail on suppression-hygiene findings (no justification, "
        "unknown rule, stale ignore); the CI lint lane runs this",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule name and description, then exit",
    )
    lint.set_defaults(func=cmd_lint)

    _add_bench_parsers(sub)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
