"""Command-line interface.

``python -m repro <command>`` drives the evaluation harness without
writing any code:

* ``study``    — run the Gainesville field-study reconstruction and print
  the paper-vs-measured report (plus optional map/CDF detail),
* ``compare``  — run every routing protocol on the identical deployment,
* ``density``  — the higher-density sweep the paper calls for,
* ``protocols`` — list available routing schemes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.routing.registry import RoutingRegistry
from repro.pki.provisioning import PROVISIONING_MODES
from repro.experiments import (
    DensitySweep,
    GainesvilleStudy,
    ProtocolComparison,
    ScenarioConfig,
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2017, help="master seed")
    parser.add_argument("--days", type=int, default=None, help="study length in days")
    parser.add_argument("--posts", type=int, default=None, help="total posts to schedule")
    parser.add_argument("--users", type=int, default=None, help="population size")
    parser.add_argument(
        "--protocol", default=None, help="routing protocol (default: interest)"
    )
    parser.add_argument(
        "--legacy-packet-crypto",
        action="store_true",
        help="use the per-packet hybrid-RSA reference path instead of the "
        "per-link secure-session layer (same traces; for benchmarking)",
    )
    parser.add_argument(
        "--provisioning",
        choices=PROVISIONING_MODES,
        default=None,
        help="identity provisioning strategy: eager on-device keygen at "
        "sign-up (default, the reference oracle), pooled deterministic "
        "keypair cache, or lazy first-use materialisation (same traces; "
        "pooled/lazy make large-N secured builds tractable)",
    )
    parser.add_argument(
        "--key-cache",
        metavar="DIR",
        default=None,
        help="on-disk keypair-pool directory for --provisioning pooled/lazy "
        "(default: $REPRO_KEY_CACHE, else memory-only)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes: parallel keypair prefetch for pooled "
        "provisioning, and parallel sweep points for the density command",
    )


def _config_from(args: argparse.Namespace) -> ScenarioConfig:
    kwargs = {"seed": args.seed}
    if args.days is not None:
        kwargs["duration_days"] = args.days
    if args.posts is not None:
        kwargs["total_posts"] = args.posts
    if args.users is not None:
        kwargs["num_users"] = args.users
    if args.protocol is not None:
        kwargs["routing_protocol"] = args.protocol
    if args.legacy_packet_crypto:
        kwargs["session_crypto"] = False
    if args.provisioning is not None:
        kwargs["provisioning"] = args.provisioning
    if args.key_cache is not None:
        kwargs["key_cache_dir"] = args.key_cache
    if args.workers != 1:
        kwargs["provisioning_workers"] = args.workers
    return ScenarioConfig(**kwargs)


def cmd_study(args: argparse.Namespace) -> int:
    config = _config_from(args)
    print(
        f"running: {config.num_users} users, {config.duration_days} days, "
        f"{config.total_posts} posts, protocol={config.routing_protocol!r}",
        file=sys.stderr,
    )
    result = GainesvilleStudy(config).run()
    print(result.report())
    if args.map:
        print()
        print("Fig. 4b overlay (b=creation, r=dissemination, x=both):")
        print(result.overlay.ascii_map())
    if args.cdf:
        print()
        print("delay CDF (hours, F(all), F(1-hop)):")
        for h, f_all, f_one in result.delay.curve_hours():
            print(f"  {h:>5.0f}  {f_all:.3f}  {f_one:.3f}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    config = _config_from(args)
    protocols = tuple(args.only.split(",")) if args.only else ProtocolComparison.DEFAULT_PROTOCOLS
    comparison = ProtocolComparison(base_config=config, protocols=protocols)
    comparison.run()
    print(comparison.report())
    return 0


def cmd_density(args: argparse.Namespace) -> int:
    config = _config_from(args)
    populations = tuple(int(p) for p in args.populations.split(","))
    sweep = DensitySweep(
        base_config=config,
        populations=populations,
        medium_batched=not args.per_device_medium,
        workers=args.workers,
    )
    sweep.run()
    print(sweep.report())
    return 0


def cmd_protocols(args: argparse.Namespace) -> int:
    for name in RoutingRegistry.with_builtins().names():
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOS middleware / AlleyOop Social reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    study = sub.add_parser("study", help="run the Gainesville field-study reconstruction")
    _add_common(study)
    study.add_argument("--map", action="store_true", help="print the Fig. 4b ASCII map")
    study.add_argument("--cdf", action="store_true", help="print the Fig. 4c CDF series")
    study.set_defaults(func=cmd_study)

    compare = sub.add_parser("compare", help="compare routing protocols on one deployment")
    _add_common(compare)
    compare.add_argument(
        "--only", default=None, help="comma-separated protocol names (default: all)"
    )
    compare.set_defaults(func=cmd_compare)

    density = sub.add_parser("density", help="population-density sweep")
    _add_common(density)
    density.add_argument(
        "--populations", default="10,16,24", help="comma-separated population sizes"
    )
    density.add_argument(
        "--per-device-medium",
        action="store_true",
        help="use the per-device contact-detection reference path "
        "(same contacts; for benchmarking the batched engine)",
    )
    density.set_defaults(func=cmd_density)

    protocols = sub.add_parser("protocols", help="list available routing schemes")
    protocols.set_defaults(func=cmd_protocols)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
