"""Multi-seed replication of the field study.

A 10-node, 7-day deployment is one sample from a very noisy process; the
paper itself could only run it once.  This module reruns the
reconstruction across seeds and reports mean and standard deviation for
every headline metric, quantifying how much of the paper-vs-measured gap
is sampling noise versus model error (the analysis EXPERIMENTS.md cites).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.experiments.gainesville import GainesvilleStudy, PAPER_VALUES
from repro.experiments.scenario import ScenarioConfig
from repro.metrics.report import format_table


@dataclass(frozen=True)
class MetricSummary:
    """Mean / stdev / extremes of one metric across replications."""

    name: str
    mean: float
    stdev: float
    minimum: float
    maximum: float
    paper: Optional[float]

    @property
    def paper_within_one_sigma(self) -> Optional[bool]:
        if self.paper is None:
            return None
        return abs(self.paper - self.mean) <= max(self.stdev, 1e-12)


class ReplicationStudy:
    """Run the deployment across several seeds and aggregate."""

    METRICS = (
        "disseminations",
        "one_hop_fraction",
        "all_within_24h",
        "all_within_94h",
        "subs_above_0.80_all",
        "subs_above_0.70_all",
    )

    def __init__(
        self,
        base_config: Optional[ScenarioConfig] = None,
        seeds: Sequence[int] = (2017, 2018, 2019, 2020, 2021),
    ) -> None:
        if len(seeds) < 2:
            raise ValueError("replication needs at least two seeds")
        self.base_config = base_config or ScenarioConfig()
        self.seeds = tuple(seeds)
        self.samples: Dict[str, List[float]] = {name: [] for name in self.METRICS}

    def run(self) -> List[MetricSummary]:
        for seed in self.seeds:
            result = GainesvilleStudy(replace(self.base_config, seed=seed)).run()
            summary = result.summary()
            for name in self.METRICS:
                value = summary.get(name)
                if value is not None:
                    self.samples[name].append(float(value))
        return self.summaries()

    def summaries(self) -> List[MetricSummary]:
        out = []
        for name in self.METRICS:
            values = self.samples[name]
            if not values:
                continue
            mean = sum(values) / len(values)
            variance = sum((v - mean) ** 2 for v in values) / max(1, len(values) - 1)
            out.append(
                MetricSummary(
                    name=name,
                    mean=mean,
                    stdev=math.sqrt(variance),
                    minimum=min(values),
                    maximum=max(values),
                    paper=PAPER_VALUES.get(name),
                )
            )
        return out

    def report(self) -> str:
        rows = []
        for summary in self.summaries():
            rows.append(
                (
                    summary.name,
                    "-" if summary.paper is None else f"{summary.paper:.3f}",
                    f"{summary.mean:.3f}",
                    f"{summary.stdev:.3f}",
                    f"[{summary.minimum:.3f}, {summary.maximum:.3f}]",
                    {True: "yes", False: "no", None: "-"}[summary.paper_within_one_sigma],
                )
            )
        return format_table(
            f"Replication across {len(self.seeds)} seeds",
            ("metric", "paper", "mean", "stdev", "range", "paper within 1 sigma"),
            rows,
        )
