"""Deployment-in-a-box experiment harness.

:class:`~repro.experiments.gainesville.GainesvilleStudy` reconstructs the
paper's §VI field study end to end — cloud + CA, ten users signing up
(the one-time infrastructure requirement), working-day mobility over an
11 km x 8 km synthetic Gainesville, the Fig. 4a social graph, a 7-day
posting schedule totalling 259 messages, IB routing — and produces every
number Fig. 4 and the §VI text report.

:mod:`~repro.experiments.comparison` re-runs the same deployment under
each routing protocol for the ablation benches.
"""

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.gainesville import GainesvilleStudy, StudyResult
from repro.experiments.comparison import ProtocolComparison, ProtocolOutcome
from repro.experiments.density_sweep import DensityPoint, DensitySweep
from repro.experiments.replication import MetricSummary, ReplicationStudy

__all__ = [
    "ScenarioConfig",
    "GainesvilleStudy",
    "StudyResult",
    "ProtocolComparison",
    "ProtocolOutcome",
    "DensityPoint",
    "DensitySweep",
    "MetricSummary",
    "ReplicationStudy",
]
