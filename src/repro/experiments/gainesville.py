"""The Gainesville field-study reconstruction (paper §VI).

Builds the complete deployment: a cloud + CA, ten users who complete the
one-time sign-up (Fig. 2a), working-day mobility across an 11 km x 8 km
synthetic Gainesville, the reconstructed Fig. 4a follow graph (46
subscriptions at day 0, 12 follow actions during the study), a 7-day
posting schedule totalling 259 messages, and interest-based routing —
then runs it and extracts every statistic Fig. 4 and §VI report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.alleyoop import AlleyOopApp, CloudService
from repro.core.config import SosConfig
from repro.crypto.drbg import HmacDrbg
from repro.faults import FaultInjector
from repro.pki.provisioning import KeypairPool, default_cache_dir, provision_user
from repro.experiments.scenario import ScenarioConfig
from repro.geo.region import Region
from repro.metrics.collector import TraceCollector
from repro.metrics.delay import DelayAnalysis
from repro.metrics.delivery import DeliveryAnalysis
from repro.metrics.report import comparison_row, format_table
from repro.metrics.spatial import MapOverlay
from repro.mobility.city import SyntheticCity
from repro.mobility.working_day import DailySchedule, WorkingDayMovement
from repro.net.device import Device
from repro.net.medium import Medium
from repro.mpc.framework import MpcFramework
from repro.sim.engine import Simulator
from repro.social import figure4a, metrics as social_metrics
from repro.social.digraph import SocialDigraph
from repro.social.generators import make_social_graph, resolve_social_graph_kind

_DAY = 86_400.0
_HOUR = 3_600.0

#: Fig. 4 values as published, used in the side-by-side report.
PAPER_VALUES = {
    "density_directed": 0.64,
    "avg_shortest_path": 1.3,
    "diameter": 2,
    "radius": 1,
    "transitivity": 0.80,
    "unique_messages": 259,
    "disseminations": 967,
    "subscriptions": 46,
    "one_hop_fraction": 0.826,
    "all_within_24h": 0.43,
    "all_within_94h": 0.90,
    "one_hop_within_24h": 0.44,
    "one_hop_within_94h": 0.92,
    "subs_above_0.80_all": 0.30,
    "subs_above_0.70_all": 0.50,
    "subs_at_least_0.80_one_hop": 0.25,
}


@dataclass
class StudyResult:
    """Everything a finished run reports."""

    config: ScenarioConfig
    collector: TraceCollector
    delay: DelayAnalysis
    delivery: DeliveryAnalysis
    overlay: MapOverlay
    social_stats: Dict[str, float]
    evaluated_subscriptions: List[Tuple[str, str]]
    contact_count: int
    security_stats: Dict[str, int] = field(default_factory=dict)

    # -- §VI-B totals -----------------------------------------------------------
    @property
    def unique_messages(self) -> int:
        return self.collector.unique_message_count

    @property
    def disseminations(self) -> int:
        return self.collector.dissemination_count

    @property
    def one_hop_fraction(self) -> Optional[float]:
        firsts = list(self.collector.first_deliveries().values())
        if not firsts:
            return None
        return sum(1 for d in firsts if d.hops == 1) / len(firsts)

    def summary(self) -> Dict[str, float]:
        out = dict(self.social_stats)
        out.update(
            {
                "unique_messages": self.unique_messages,
                "disseminations": self.disseminations,
                "subscriptions": len(self.evaluated_subscriptions),
                "one_hop_fraction": self.one_hop_fraction or 0.0,
            }
        )
        out.update(self.delay.paper_points())
        out.update(self.delivery.paper_points())
        return out

    def report(self) -> str:
        """The paper-vs-measured table for every Fig. 4 quantity."""
        summary = self.summary()
        rows = [
            comparison_row(name, PAPER_VALUES.get(name), summary.get(name))
            for name in PAPER_VALUES
        ]
        return format_table(
            "Gainesville field study reproduction (paper Fig. 4 / §VI)",
            ("metric", "paper", "measured", "delta"),
            rows,
        )


class GainesvilleStudy:
    """Constructs and runs one deployment reconstruction."""

    def __init__(self, config: Optional[ScenarioConfig] = None) -> None:
        self.config = config or ScenarioConfig()
        self.sim: Optional[Simulator] = None
        self.medium: Optional[Medium] = None
        self.apps: Dict[int, AlleyOopApp] = {}  # paper node label -> app
        self.devices: Dict[int, Device] = {}
        self.user_ids: Dict[int, str] = {}
        self.social_graph: Optional[SocialDigraph] = None
        #: The concrete generator "auto" resolved to (set by build()).
        self.social_graph_kind: Optional[str] = None
        self.keypair_pool = None  # set by build() for pooled/lazy modes
        #: The fault injector, or None when ``config.faults == "none"``.
        self.injector: Optional[FaultInjector] = None
        self._overlay: Optional[MapOverlay] = None
        self._built = False

    # -- construction -----------------------------------------------------------------
    def build(self) -> None:
        """Materialise the whole deployment (idempotent)."""
        if self._built:
            return
        cfg = self.config
        fault_plan = cfg.fault_plan()
        self.sim = Simulator(seed=cfg.seed)
        self.medium = Medium(
            self.sim,
            tick_interval=cfg.medium_tick_s,
            batched=cfg.medium_batched,
            shards=cfg.medium_shards,
            halo_m=cfg.medium_halo_m,
        )
        self.framework = MpcFramework(self.sim, self.medium)
        self.cloud = CloudService(
            rng=HmacDrbg.from_int(cfg.seed * 7919 + 1), now=0.0, key_bits=cfg.key_bits
        )
        region = Region(0.0, 0.0, cfg.area[0], cfg.area[1])
        city_rng = self.sim.streams.get("city")
        self.city = SyntheticCity.gainesville_like(
            region,
            city_rng,
            num_homes=cfg.num_users,
            num_venues=cfg.num_social_venues,
            campus_radius=cfg.campus_radius_m,
        )
        self.social_graph = self._make_social_graph()
        if self.social_graph_kind is None:
            # Subclass overrode _make_social_graph without labelling it.
            self.social_graph_kind = resolve_social_graph_kind(
                cfg.social_graph, cfg.num_users
            )

        nodes = sorted(self.social_graph.nodes)
        # Identity provisioning: the pool (shared by pooled *and* lazy
        # materialisation) lives on the study so benches can read its
        # stats; pooled mode prefetches every user's key pair up front —
        # in parallel when the scenario asks for workers.
        if cfg.provisioning in ("pooled", "lazy"):
            self.keypair_pool = KeypairPool(cfg.key_cache_dir or default_cache_dir())
        else:
            self.keypair_pool = None
        if cfg.provisioning == "pooled":
            self.keypair_pool.prefetch(
                cfg.key_bits,
                cfg.seed,
                range(len(nodes)),
                workers=cfg.provisioning_workers,
            )
        for index, node in enumerate(nodes):
            username = f"user-{node:02d}" if isinstance(node, int) else str(node)
            signup = provision_user(
                self.cloud,
                username,
                seed=cfg.seed,
                index=index,
                now=0.0,
                key_bits=cfg.key_bits,
                mode=cfg.provisioning,
                pool=self.keypair_pool,
            )
            self.user_ids[node] = signup.user_id
            venue_rng = self.sim.streams.get(f"venues:{node}")
            lo, hi = cfg.venues_per_user
            count = min(len(self.city.social_venues), venue_rng.randint(lo, hi))
            venues = venue_rng.sample(self.city.social_venues, count) if count else []
            schedule = DailySchedule(
                home=self.city.homes[index % len(self.city.homes)],
                work=self.city.campus,
                social_places=venues,
                weekday_attendance=cfg.weekday_attendance,
                weekday_social_prob=cfg.weekday_social_prob,
                weekend_outing_prob=cfg.weekend_outing_prob,
                depart_window_hours=cfg.campus_arrival_hours,
                work_stay_hours=cfg.campus_stay_hours,
            )
            mobility = WorkingDayMovement(schedule, self.sim.streams.get(f"mobility:{node}"))
            device = Device(f"device-{node}", mobility)
            self.devices[node] = device
            sos_config = SosConfig(
                routing_protocol=cfg.routing_protocol,
                require_encryption=cfg.require_encryption,
                session_crypto=cfg.session_crypto,
                provisioning=cfg.provisioning,
                relay_request_grace=cfg.relay_request_grace,
            )
            self.apps[node] = AlleyOopApp(
                sim=self.sim,
                framework=self.framework,
                device_id=device.device_id,
                user_id=signup.user_id,
                username=username,
                keystore=signup.keystore,
                cloud=self.cloud,
                rng=HmacDrbg.from_int(cfg.seed * 15485863 + index),
                config=sos_config,
                resilience=None if fault_plan.is_none else fault_plan.retry_policy(),
            )

        self._wire_day0_follows()
        self._schedule_late_follows()
        self._schedule_meetups()  # before any position query: appointments
        for node in sorted(self.devices):
            self.medium.add_device(self.devices[node])
        self._schedule_duty_cycle()
        self._schedule_posts()
        self._attach_overlay(region)
        if not cfg.cloud_online_after_signup and not fault_plan.has_cloud_outages:
            # The one-time infrastructure requirement: after sign-up the
            # cloud goes dark and everything below is D2D only.  When the
            # plan configures connectivity windows, the ConnectivityModel
            # owns the online flag instead.
            self.cloud.online = False
        if not fault_plan.is_none:
            self.injector = FaultInjector(
                self.sim, fault_plan, cfg.resolved_fault_seed()
            )
            self.injector.install(
                self.cloud, self.medium, self.framework, list(self.apps.values())
            )
        # repro: ignore[nondet-iter] -- order cannot reach the trace nondeterministically: apps is keyed by node name and populated in the seeded build's node order, so insertion-order iteration is identical for a fixed seed across runs and processes.
        for app in self.apps.values():
            app.start()
        self.medium.start()
        self._built = True

    def _make_social_graph(self) -> SocialDigraph:
        cfg = self.config
        self.social_graph_kind = resolve_social_graph_kind(cfg.social_graph, cfg.num_users)
        return make_social_graph(
            cfg.social_graph, cfg.num_users, self.sim.streams.get("social")
        )

    def _edge_pairs(self, edges) -> List[Tuple[int, int]]:
        return [(a, b) for a, b in edges]

    def _initial_subscriptions(self) -> Tuple[Tuple[int, int], ...]:
        """The day-0 follow edges, in wiring order.

        The figure4a reconstruction withholds its 12 late follows (they
        happen during the study); every generated graph is wired whole.
        Both sources arrive grouped by follower — INITIAL_SUBSCRIPTIONS
        is sorted, SocialDigraph.edges() yields per-follower runs — which
        is what lets bulk and per-edge wiring emit identical traces.
        """
        if self.social_graph_kind == "figure4a":
            return figure4a.INITIAL_SUBSCRIPTIONS
        return tuple(self.social_graph.edges())

    def _wire_day0_follows(self) -> None:
        initial = self._initial_subscriptions()
        if self.config.bulk_bootstrap:
            by_follower: Dict[int, List[str]] = {}
            for follower, followee in initial:
                by_follower.setdefault(follower, []).append(self.user_ids[followee])
            for follower, followees in by_follower.items():
                self.apps[follower].follow_many(followees)
        else:
            # Per-edge reference oracle: one cloud sync round per edge.
            for follower, followee in initial:
                self.apps[follower].follow(self.user_ids[followee])

    def _schedule_late_follows(self) -> None:
        if self.social_graph_kind != "figure4a":
            return
        rng = self.sim.streams.get("late-follows")
        horizon_days = max(1, min(5, self.config.duration_days - 1))
        for follower, followee in figure4a.LATE_FOLLOWS:
            day = rng.randint(1, horizon_days)
            hour = rng.uniform(9.0, 22.0)
            at = day * _DAY + hour * _HOUR
            self.sim.schedule_at(
                at,
                self.apps[follower].follow,
                self.user_ids[followee],
                name=f"follow:{follower}->{followee}",
            )

    def _schedule_meetups(self) -> None:
        """Arrange coordinated friend meetups (appointments) up front.

        Friends in the follow graph meet in pairs (sometimes with a
        mutual friend) at shared venues.  These deliberate co-locations —
        not incidental campus proximity — carry most D2D contacts, which
        is what produces the field study's author-dominated (1-hop)
        delivery pattern.
        """
        cfg = self.config
        self._meetup_windows: Dict[int, List[Tuple[float, float]]] = {
            node: [] for node in self.devices
        }
        if cfg.meetups_per_day <= 0 or not self.city.social_venues:
            return
        rng = self.sim.streams.get("meetups")
        full_adjacency = self.social_graph.undirected_adjacency()
        # The physical-friendship subgraph: only some follow edges come
        # with real-world hangouts.
        adjacency: Dict[object, set] = {n: set() for n in full_adjacency}
        for a in sorted(full_adjacency, key=repr):
            for b in sorted(full_adjacency[a], key=repr):
                if repr(a) < repr(b) and rng.random() < cfg.close_friend_prob:
                    adjacency[a].add(b)
                    adjacency[b].add(a)
        self.close_friend_graph = adjacency
        pairs = sorted(
            (a, b) for a in adjacency for b in adjacency[a] if repr(a) < repr(b)
        )
        if not pairs:
            return
        lo_h, hi_h = cfg.meetup_hours
        lo_d, hi_d = cfg.meetup_duration_hours
        lo_g, hi_g = cfg.meetup_group_size
        nodes = sorted(self.devices, key=repr)
        for day in range(cfg.duration_days):
            rate = cfg.meetups_per_day
            if day % 7 >= 5:  # weekend (study started on a Monday)
                rate *= cfg.weekend_meetup_factor
            count = rng.randint(
                max(0, int(rate * 0.5)), max(1, round(rate * 1.5))
            )
            day_busy: Dict[int, List[Tuple[float, float]]] = {n: [] for n in nodes}
            for _ in range(count):
                host = nodes[rng.randrange(len(nodes))]
                friends = sorted(adjacency[host], key=repr)
                if not friends:
                    continue
                size = rng.randint(lo_g, hi_g)
                invited = friends if len(friends) <= size else rng.sample(friends, size)
                start = day * _DAY + rng.uniform(lo_h, hi_h) * _HOUR
                duration = rng.uniform(lo_d, hi_d) * _HOUR
                venue = self.city.social_venues[rng.randrange(len(self.city.social_venues))]
                for node in [host] + list(invited):
                    # Skip double-booked participants.
                    if any(s < start + duration and start < e for s, e in day_busy[node]):
                        continue
                    day_busy[node].append((start, start + duration))
                    mobility = self.devices[node].mobility
                    # Stagger arrivals by a couple of minutes.
                    arrive = start + rng.uniform(0.0, 180.0)
                    mobility.add_appointment(arrive, venue, duration)
                    # Leave travel margin before counting it "attended".
                    self._meetup_windows[node].append(
                        (arrive + 900.0, arrive + duration - 300.0)
                    )

    def _schedule_duty_cycle(self) -> None:
        """Power radios only while the app is plausibly foregrounded:
        during the user's meetups and during short random daily sessions
        (checking the feed).  Apple's MPC gives SOS no background time, so
        the in-vivo system really did communicate only in these windows.
        """
        cfg = self.config
        if not cfg.duty_cycle:
            return
        rng = self.sim.streams.get("duty-cycle")
        lo_m, hi_m = cfg.foreground_minutes
        for node, device in self.devices.items():
            device.power_off()
            windows = list(self._meetup_windows.get(node, []))
            # Random feed-checking sessions.
            for day in range(cfg.duration_days):
                sessions = rng.randint(
                    max(0, int(cfg.foreground_sessions_per_day) - 1),
                    int(cfg.foreground_sessions_per_day) + 1,
                )
                for _ in range(sessions):
                    start = day * _DAY + rng.uniform(8.0, 23.0) * _HOUR
                    windows.append((start, start + rng.uniform(lo_m, hi_m) * 60.0))
            # Merge overlaps so a window's end never cuts another short.
            merged: List[Tuple[float, float]] = []
            for start, end in sorted((max(0.0, s - 60.0), e) for s, e in windows if e > s):
                if merged and start <= merged[-1][1]:
                    merged[-1] = (merged[-1][0], max(merged[-1][1], end))
                else:
                    merged.append((start, end))
            for start, end in merged:
                # Radios up slightly before the window (session setup).
                self.sim.schedule_at(start, device.power_on, name=f"on:{node}")
                self.sim.schedule_at(end, device.power_off, name=f"off:{node}")

    def _schedule_posts(self) -> None:
        cfg = self.config
        rng = self.sim.streams.get("posting")
        nodes = sorted(self.apps)
        weights = [1.0 / (k + 1) ** cfg.posting_skew for k in range(len(nodes))]
        total_weight = sum(weights)
        lo_h, hi_h = cfg.posting_hours
        for post_index in range(cfg.total_posts):
            pick = rng.random() * total_weight
            acc = 0.0
            node = nodes[-1]
            for candidate, weight in zip(nodes, weights):
                acc += weight
                if pick <= acc:
                    node = candidate
                    break
            windows = self._meetup_windows.get(node, [])
            usable = [w for w in windows if w[1] > w[0]]
            if usable and rng.random() < cfg.post_at_meetup_prob:
                # Post from a gathering: subscribers present get it 1-hop.
                start, end = usable[rng.randrange(len(usable))]
                at = rng.uniform(start, end)
            else:
                day = rng.randrange(cfg.duration_days)
                hour = rng.uniform(lo_h, hi_h)
                at = day * _DAY + hour * _HOUR
            app = self.apps[node]
            text = f"post {post_index} from node {node}"
            self.sim.schedule_at(at, app.post, text, name=f"post:{node}:{post_index}")

    def _attach_overlay(self, region: Region) -> None:
        overlay = MapOverlay(region)
        user_to_node = {uid: node for node, uid in self.user_ids.items()}

        def _on_trace(event) -> None:
            if event.category != "message":
                return
            if event.kind == "created":
                node = user_to_node.get(event.data["owner"])
                kind = MapOverlay.CREATED
            elif event.kind == "received":
                node = user_to_node.get(event.data["owner"])
                kind = MapOverlay.DISSEMINATED
            else:
                return
            if node is None:
                return
            device = self.devices[node]
            # Passive read: querying the mobility model here would advance
            # its integrator at extra intermediate times and perturb the
            # simulation; the up-to-a-tick-stale tick position is the
            # observation the real deployment logged anyway.
            position = device.last_position or device.position_at(self.sim.now)
            overlay.add(kind, event.time, position, event.data["owner"])

        self.sim.trace.subscribe(_on_trace)
        self._overlay = overlay

    # -- execution -----------------------------------------------------------------------
    def run(self) -> StudyResult:
        """Run to the end of the study window and analyse."""
        self.build()
        self.sim.run(until=self.config.duration_seconds)
        self.medium.stop()
        collector = TraceCollector(self.sim.trace)
        if self.social_graph_kind == "figure4a":
            evaluated = [
                (self.user_ids[a], self.user_ids[b])
                for a, b in figure4a.INITIAL_SUBSCRIPTIONS
            ]
        else:
            evaluated = [
                (self.user_ids[a], self.user_ids[b]) for a, b in self.social_graph.edges()
            ]
        delay = DelayAnalysis.from_collector(collector)
        delivery = DeliveryAnalysis.from_collector(
            collector, evaluated, window_end=self.config.duration_seconds
        )
        security: Dict[str, int] = {}
        # repro: ignore[nondet-iter] -- order cannot reach the trace: post-run commutative aggregation (integer += per key) of per-app counters; the sum is order-independent and nothing here emits.
        for app in self.apps.values():
            for key, value in app.sos.security_stats.items():
                security[key] = security.get(key, 0) + value
        # How many devices ever paid for their key material (== num_users
        # except under lazy provisioning, where idle devices never do).
        security["keystores_materialized"] = sum(
            1 for app in self.apps.values() if app.sos.adhoc.keystore.materialized
        )
        return StudyResult(
            config=self.config,
            collector=collector,
            delay=delay,
            delivery=delivery,
            overlay=self._overlay,
            social_stats=self._social_stats(),
            evaluated_subscriptions=evaluated,
            contact_count=self.medium.contacts.total_contacts(),
            security_stats=security,
        )

    def _social_stats(self) -> Dict[str, float]:
        # All-pairs BFS over the follow graph — O(N·E) post-run analysis
        # that dominates wall-clock at large N.  Nothing downstream of the
        # trace depends on it, so the config can turn it off wholesale.
        if not self.config.social_graph_stats:
            return {}
        graph = self.social_graph
        return {
            "density_directed": social_metrics.density_directed(graph),
            "avg_shortest_path": social_metrics.average_shortest_path_length(graph),
            "diameter": social_metrics.diameter(graph),
            "radius": social_metrics.radius(graph),
            "transitivity": social_metrics.transitivity_undirected(graph),
        }
