"""Scenario configuration.

One dataclass captures every knob of a deployment reconstruction, with
defaults equal to the field study's published parameters.  Anything the
paper does not publish (posting-time distribution, venue count, campus
footprint) is an explicit, documented calibration parameter here rather
than a buried constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.pki.provisioning import PROVISIONING_MODES
from repro.social.generators import resolve_social_graph_kind

#: Paper §VI: "~11km x 8km area".
STUDY_WIDTH_M = 11_000.0
STUDY_HEIGHT_M = 8_000.0

#: Paper §VI: 7-day TestFlight beta, 10 active users, 259 unique messages.
STUDY_DAYS = 7
STUDY_USERS = 10
STUDY_POSTS = 259


@dataclass
class ScenarioConfig:
    """All knobs of a deployment run."""

    seed: int = 2017
    num_users: int = STUDY_USERS
    duration_days: int = STUDY_DAYS
    area: Tuple[float, float] = (STUDY_WIDTH_M, STUDY_HEIGHT_M)
    total_posts: int = STUDY_POSTS
    routing_protocol: str = "interest"

    # -- mobility calibration (not published; see EXPERIMENTS.md) -----------------
    medium_tick_s: float = 30.0
    #: Contact-detection engine: the batched pair sweep (default) or the
    #: per-device reference path.  Both produce byte-identical contact
    #: traces for a fixed seed; the flag exists for benchmarking and
    #: equivalence checks (see "Scaling the medium" in repro.net.medium).
    medium_batched: bool = True
    #: ``>= 1`` runs contact detection on the sharded cross-process
    #: engine with that many worker processes (spatial bands + halo
    #: exchange; see repro.net.medium_engines.sharded).  ``0`` keeps the
    #: single-process engines.  Traces are byte-identical across engines
    #: and shard counts for a fixed seed.
    medium_shards: int = 0
    #: Minimum sharded-engine ghost-zone width in metres (None = the
    #: sweep radius; the knob can only widen).  Ignored unless
    #: ``medium_shards >= 1``.
    medium_halo_m: Optional[float] = None
    campus_radius_m: float = 500.0
    num_social_venues: int = 6

    # -- social graph ------------------------------------------------------------------
    #: Follow-graph generator family (see repro.social.generators):
    #: ``"auto"`` keeps the historical dispatch — the exact Fig. 4a
    #: reconstruction at N=10, ``hub_and_cluster`` otherwise.  The sparse
    #: families (``degree_bounded``, ``powerlaw_cluster``) keep expected
    #: per-user degree independent of N, opening large-N sweeps that the
    #: O(N²)-dense hub_and_cluster generator cannot reach.
    social_graph: str = "auto"
    #: Compute the post-run social-graph summary metrics (density,
    #: average shortest path, diameter, radius, transitivity).  These run
    #: an all-pairs BFS over the follow graph — O(N·E) at study *end*,
    #: which dominates wall-clock at large N while touching nothing the
    #: simulation emits.  ``False`` skips them (``StudyResult.social_stats``
    #: comes back empty); traces are identical either way.  The large-N
    #: medium benchmarks turn this off.
    social_graph_stats: bool = True
    #: Day-0 follow wiring: ``True`` batches each user's initial follow
    #: list through ``AlleyOopApp.follow_many`` — interest set updated
    #: once, one compact FOLLOW_MANY log record, one aggregated trace
    #: event and one bulk cloud sync round per *user*; ``False`` keeps
    #: the per-edge reference path (one FOLLOW record, trace event and
    #: cloud round per *edge*).  Both modes produce byte-identical
    #: delivery/delay traces, identical follow/interest sets and
    #: identical subscription windows for a fixed seed; only the day-0
    #: bookkeeping representation is compacted.  The flag exists for
    #: benchmarking and equivalence checks (see
    #: benchmarks/test_bench_social_bootstrap.py).
    bulk_bootstrap: bool = True
    venues_per_user: Tuple[int, int] = (2, 4)
    weekday_attendance: float = 0.5
    weekday_social_prob: float = 0.40
    weekend_outing_prob: float = 0.55
    #: Campus visits start uniformly in this hour-of-day window (staggered
    #: class times); None restores wake+prep departures.
    campus_arrival_hours: Optional[Tuple[float, float]] = (8.5, 14.0)
    #: Campus stay duration in hours (students attend classes, not
    #: nine-to-five shifts); None restores the fixed leave hour.
    campus_stay_hours: Optional[Tuple[float, float]] = (2.0, 5.0)

    # -- coordinated friend meetups ----------------------------------------------------
    #: Mean number of arranged friend meetups per day across the whole
    #: population (friends coordinate lunches/coffee; this is what makes
    #: author->subscriber contacts dominate, matching the study's 82.6%
    #: 1-hop share).
    meetups_per_day: float = 2.6
    #: Probability a meetup grows to include a mutual friend (legacy knob,
    #: superseded by meetup_group_size; kept for ablations).
    meetup_group_prob: float = 0.4
    #: Gathering size range: the host invites this many friends (clipped
    #: to the host's friend count).  Gatherings covering most of a user's
    #: follower cluster are what make posted-at-gathering deliveries
    #: mostly 1-hop.
    meetup_group_size: Tuple[int, int] = (2, 4)
    #: Fraction of follow-graph edges that are also *physical* friendships
    #: (people who actually hang out).  Following someone does not mean
    #: meeting them — this gap is what produces the paper's partial
    #: delivery ratios (median ~0.7) alongside 1-hop-dominated deliveries:
    #: close pairs deliver directly and quickly, distant subscriptions
    #: depend on occasional relays.
    close_friend_prob: float = 0.6
    #: Hour-of-day window in which meetups start.
    meetup_hours: Tuple[float, float] = (10.5, 20.0)
    #: Weekend meetup rate relative to weekdays (the participants
    #: "typically interacted during the school week", §VI-A) — weekend
    #: posts waiting for Monday are a large part of the delay tail.
    weekend_meetup_factor: float = 0.54
    #: Meetup duration in hours.
    meetup_duration_hours: Tuple[float, float] = (0.75, 2.0)
    #: Fraction of posts created while the author is at one of its own
    #: meetups (people post about what they are doing, with friends
    #: around) — the mechanism behind the study's 1-hop-dominated
    #: deliveries.
    post_at_meetup_prob: float = 0.44

    # -- app duty cycle ------------------------------------------------------------------
    #: iOS Multipeer Connectivity only runs while the app is foregrounded.
    #: When True, a device's radios are on during the user's meetups plus
    #: a few random foreground sessions per day, and off otherwise.  This
    #: is what keeps incidental relay transfers rare in vivo.
    duty_cycle: bool = True
    foreground_sessions_per_day: float = 2.0
    foreground_minutes: Tuple[float, float] = (10.0, 30.0)

    # -- posting calibration ---------------------------------------------------------
    #: Zipf-ish activity skew: weight of user k is 1 / (k + 1) ** skew.
    posting_skew: float = 0.7
    #: Posts happen during waking hours [start, end) local time.
    posting_hours: Tuple[float, float] = (8.0, 23.0)

    # -- middleware --------------------------------------------------------------------
    #: Origin-preference grace (see SosConfig.relay_request_grace).
    relay_request_grace: float = 2100.0

    # -- security ----------------------------------------------------------------------
    key_bits: int = 1024
    require_encryption: bool = True
    #: Identity provisioning strategy: ``"eager"`` (on-device keygen at
    #: sign-up — the paper's flow and the reference oracle), ``"pooled"``
    #: (key pairs from a deterministic ``repro.pki.provisioning.KeypairPool``,
    #: optionally cached on disk under ``key_cache_dir``) or ``"lazy"``
    #: (placeholder sign-up; keygen deferred to first secured use).  All
    #: three yield byte-identical traces for a fixed seed; pooled/lazy
    #: exist to make large-N secured world builds tractable.
    provisioning: str = "eager"
    #: On-disk keypair-pool directory for ``provisioning="pooled"``/"lazy";
    #: ``None`` falls back to ``$REPRO_KEY_CACHE`` (memory-only if unset).
    key_cache_dir: Optional[str] = None
    #: Worker processes for the pooled-mode keypair prefetch (1 = serial;
    #: results are identical at any worker count).
    provisioning_workers: int = 1
    #: Packet protection engine: the per-link secure-session layer
    #: (default) or the legacy per-packet hybrid-RSA pipeline.  Both
    #: produce byte-identical delivery/delay traces for a fixed seed; the
    #: flag exists for benchmarking and equivalence checks (see
    #: repro.crypto.session and benchmarks/test_bench_crypto.py).
    session_crypto: bool = True

    #: Cloud availability after sign-up.  The reproduction keeps it off to
    #: prove the "one-time infrastructure" property; deliveries are D2D.
    cloud_online_after_signup: bool = False

    # -- fault injection ----------------------------------------------------------------
    #: Fault plan spec (see repro.faults.plan.FaultPlan.parse): ``"none"``
    #: (default — the whole subsystem stays out of the run and traces are
    #: byte-identical to a faultless build), a preset name (``"mild"``,
    #: ``"harsh"``), optionally with ``key=value`` overrides, or a bare
    #: override list.  When active, every app also gets the plan's
    #: retry/backoff policy for cloud sync.
    faults: str = "none"
    #: Seed for the fault DRBG substreams; ``None`` derives one from
    #: ``seed`` so fault schedules stay independent of the sim's streams.
    fault_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_users < 2:
            raise ValueError("need at least two users")
        if self.duration_days < 1:
            raise ValueError("need at least one day")
        if self.total_posts < 0:
            raise ValueError("total_posts must be non-negative")
        lo, hi = self.posting_hours
        if not 0 <= lo < hi <= 24:
            raise ValueError(f"invalid posting hours {self.posting_hours!r}")
        if self.provisioning not in PROVISIONING_MODES:
            raise ValueError(
                f"provisioning must be one of {PROVISIONING_MODES}, "
                f"got {self.provisioning!r}"
            )
        if self.provisioning_workers < 1:
            raise ValueError("provisioning_workers must be at least 1")
        if self.medium_shards < 0:
            raise ValueError("medium_shards must be non-negative")
        if self.medium_halo_m is not None and self.medium_halo_m <= 0:
            raise ValueError("medium_halo_m must be positive when set")
        # Unknown kinds and the figure4a/num_users constraint are
        # rejected by the knob's single validation point.
        resolve_social_graph_kind(self.social_graph, self.num_users)
        # Same discipline for the fault spec: reject bad plans at config
        # time, not mid-build.
        FaultPlan.parse(self.faults)

    def fault_plan(self) -> FaultPlan:
        """The parsed fault plan for this scenario."""
        return FaultPlan.parse(self.faults)

    def resolved_fault_seed(self) -> int:
        """The fault-DRBG seed: explicit, or derived from ``seed`` (a
        fixed affine map keeps it distinct from every other seed the
        simulator derives)."""
        if self.fault_seed is not None:
            return self.fault_seed
        return self.seed * 6_700_417 + 3

    @property
    def duration_seconds(self) -> float:
        return self.duration_days * 86_400.0
