"""Higher-density what-if studies (the paper's closing call).

§VI-B: "The results at such a low density provide promising insight into
delay tolerant social networks and suggest further investigations at
higher densities are needed."  This module performs those investigations
synthetically: it sweeps population size (at fixed area) or area (at fixed
population) and reports how delivery ratio, delay and overhead respond.

Node density is users per km²; the field study sat at 10 / 88 km² ≈ 0.11.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.experiments.gainesville import GainesvilleStudy
from repro.experiments.scenario import ScenarioConfig
from repro.metrics.report import format_table
from repro.sim.parallel import parallel_map


@dataclass(frozen=True)
class DensityPoint:
    """One sweep sample."""

    num_users: int
    area_km2: float
    density_per_km2: float
    delivery_ratio: Optional[float]
    median_delay_h: Optional[float]
    disseminations: int
    contacts: int
    #: Medium instrumentation: ticks run and candidate distance checks
    #: performed in the spatial index — the contact-detection work the
    #: batched engine compresses (compare a run against
    #: ``medium_batched=False`` to see the reduction).
    medium_ticks: int = 0
    distance_checks: int = 0

    @classmethod
    def from_study(cls, config: ScenarioConfig, result, medium=None) -> "DensityPoint":
        area_km2 = config.area[0] * config.area[1] / 1e6
        cdf = result.delay.all_hops
        return cls(
            num_users=config.num_users,
            area_km2=area_km2,
            density_per_km2=config.num_users / area_km2,
            delivery_ratio=result.delivery.overall_delivery_ratio(),
            median_delay_h=(cdf.median() / 3600.0) if cdf.n else None,
            disseminations=result.disseminations,
            contacts=result.contact_count,
            medium_ticks=medium.tick_count if medium is not None else 0,
            distance_checks=medium.distance_checks if medium is not None else 0,
        )


def _run_sweep_point(config: ScenarioConfig) -> DensityPoint:
    """Build + run + reduce one sweep sample (module-level so the
    parallel runner can ship it to ``multiprocessing`` workers; each
    point is a pure function of its config, so scheduling cannot change
    results)."""
    study = GainesvilleStudy(config)
    result = study.run()
    return DensityPoint.from_study(config, result, medium=study.medium)


class DensitySweep:
    """Run the deployment at several densities, all else equal.

    ``workers > 1`` runs the sweep points in parallel processes.  Every
    point derives all randomness from its own config seed and every
    worker provisions from per-user DRBGs, so a parallel sweep reports
    exactly what the serial sweep would — only sooner.  Pair it with
    ``provisioning="pooled"`` and a shared ``key_cache_dir`` so the swept
    populations pay RSA keygen once across the whole sweep (and across
    repeated sweeps).
    """

    def __init__(
        self,
        base_config: Optional[ScenarioConfig] = None,
        populations: Sequence[int] = (10, 16, 24),
        scale_meetups_with_population: bool = True,
        medium_batched: bool = True,
        medium_shards: int = 0,
        provisioning: Optional[str] = None,
        key_cache_dir: Optional[str] = None,
        workers: int = 1,
        social_graph: Optional[str] = None,
        bulk_bootstrap: Optional[bool] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if medium_shards and workers > 1:
            # Nested process pools: every sweep worker would fork its own
            # shard pool.  Legal, but never what a 1-machine sweep wants.
            raise ValueError(
                "medium_shards requires workers=1 (sweep-level and "
                "shard-level process pools do not compose on one host)"
            )
        self.base_config = base_config or ScenarioConfig(duration_days=3, total_posts=110)
        self.populations = tuple(populations)
        self.scale_meetups_with_population = scale_meetups_with_population
        self.medium_batched = medium_batched
        #: Sharded-engine worker count per point (0 = single-process).
        self.medium_shards = medium_shards
        self.provisioning = provisioning
        self.key_cache_dir = key_cache_dir
        self.workers = workers
        #: Follow-graph generator for the swept populations; the sparse
        #: families (degree_bounded/powerlaw_cluster) are what make
        #: N >> 500 points affordable.  None rides base_config.
        self.social_graph = social_graph
        #: Day-0 wiring mode override; None rides base_config.
        self.bulk_bootstrap = bulk_bootstrap
        self.points: List[DensityPoint] = []

    def _config_for(self, num_users: int) -> ScenarioConfig:
        # Crypto mode rides base_config (ScenarioConfig.session_crypto);
        # medium_batched stays an explicit engine toggle (PR 1 API), and
        # provisioning/key_cache_dir override base_config when given.
        config = replace(
            self.base_config,
            num_users=num_users,
            medium_batched=self.medium_batched,
            medium_shards=self.medium_shards,
        )
        if self.provisioning is not None:
            config = replace(config, provisioning=self.provisioning)
        if self.key_cache_dir is not None:
            config = replace(config, key_cache_dir=self.key_cache_dir)
        if self.social_graph is not None:
            config = replace(config, social_graph=self.social_graph)
        if self.bulk_bootstrap is not None:
            config = replace(config, bulk_bootstrap=self.bulk_bootstrap)
        if self.scale_meetups_with_population:
            # Meetup opportunities scale with people, not with the map.
            factor = num_users / self.base_config.num_users
            config = replace(config, meetups_per_day=self.base_config.meetups_per_day * factor)
        return config

    def run(self) -> List[DensityPoint]:
        configs = [self._config_for(num_users) for num_users in self.populations]
        self.points = self._run_all(configs)
        return self.points

    def _run_all(self, configs: List[ScenarioConfig]) -> List[DensityPoint]:
        # parallel_map preserves population order, whatever finishes
        # first, and falls back to a serial run where forking is not
        # possible (each point is a pure function of its config).
        return parallel_map(_run_sweep_point, configs, self.workers)

    def report(self) -> str:
        rows: List[Tuple] = []
        for point in self.points:
            rows.append(
                (
                    point.num_users,
                    f"{point.density_per_km2:.3f}",
                    "-" if point.delivery_ratio is None else f"{point.delivery_ratio:.3f}",
                    "-" if point.median_delay_h is None else f"{point.median_delay_h:.1f}",
                    point.disseminations,
                    point.contacts,
                    point.distance_checks,
                )
            )
        return format_table(
            "Density sweep (the paper's 'higher densities' call, §VI-B)",
            (
                "users",
                "users/km^2",
                "delivery",
                "median delay (h)",
                "transfers",
                "contacts",
                "pair checks",
            ),
            rows,
        )
