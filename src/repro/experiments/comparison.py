"""Routing-protocol comparison on the reconstructed deployment.

The point of the SOS middleware is that schemes are swappable (§III-B);
this module swaps them over the *same* mobility, social graph and posting
schedule (identical seeds) and compares delivery ratio, delay and
overhead — the ablation the modular design exists to enable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.experiments.gainesville import GainesvilleStudy, StudyResult
from repro.experiments.scenario import ScenarioConfig
from repro.metrics.report import format_table


@dataclass(frozen=True)
class ProtocolOutcome:
    """Headline numbers for one protocol run."""

    protocol: str
    delivery_ratio: Optional[float]
    median_delay_h: Optional[float]
    disseminations: int
    one_hop_fraction: Optional[float]
    bytes_sent: int

    @classmethod
    def from_result(cls, protocol: str, result: StudyResult) -> "ProtocolOutcome":
        delay_cdf = result.delay.all_hops
        median = delay_cdf.median() / 3600.0 if delay_cdf.n else None
        return cls(
            protocol=protocol,
            delivery_ratio=result.delivery.overall_delivery_ratio(),
            median_delay_h=median,
            disseminations=result.disseminations,
            one_hop_fraction=result.one_hop_fraction,
            bytes_sent=result.security_stats.get("bytes_sent", 0),
        )


class ProtocolComparison:
    """Run the deployment once per protocol, identical everything else."""

    DEFAULT_PROTOCOLS = (
        "interest", "epidemic", "direct", "first_contact",
        "spray_wait", "prophet", "bubble",
    )

    def __init__(
        self,
        base_config: Optional[ScenarioConfig] = None,
        protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    ) -> None:
        self.base_config = base_config or ScenarioConfig()
        self.protocols = tuple(protocols)
        self.outcomes: Dict[str, ProtocolOutcome] = {}
        self.results: Dict[str, StudyResult] = {}

    def run(self) -> List[ProtocolOutcome]:
        for protocol in self.protocols:
            config = replace(self.base_config, routing_protocol=protocol)
            result = GainesvilleStudy(config).run()
            self.results[protocol] = result
            self.outcomes[protocol] = ProtocolOutcome.from_result(protocol, result)
        return [self.outcomes[p] for p in self.protocols]

    def report(self) -> str:
        rows = []
        for protocol in self.protocols:
            outcome = self.outcomes[protocol]
            rows.append(
                (
                    outcome.protocol,
                    "-" if outcome.delivery_ratio is None else f"{outcome.delivery_ratio:.3f}",
                    "-" if outcome.median_delay_h is None else f"{outcome.median_delay_h:.1f}",
                    outcome.disseminations,
                    "-" if outcome.one_hop_fraction is None else f"{outcome.one_hop_fraction:.3f}",
                    outcome.bytes_sent,
                )
            )
        return format_table(
            "Routing protocol comparison (same deployment, same seed)",
            ("protocol", "delivery", "median delay (h)", "transfers", "1-hop frac", "bytes sent"),
            rows,
        )
